package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fleetSpec is a small scripted fleet simulation over the 4-cluster
// miniature that finishes in milliseconds.
const fleetSpec = `{
	"kind": "fleetsim",
	"name": "svc-fleet",
	"system": {"preset": "small"},
	"traffic": {"flits": 16, "flitBytes": [128], "lambda": {"max": 0.01, "points": 4}},
	"performability": {
		"nodes": [{"group": 1, "mttf": 1500, "mttr": 50, "repairers": 2}]
	},
	"fleetsim": {
		"horizon": 1000,
		"epoch": 100,
		"stochastic": false,
		"timeline": [
			{"at": 100, "action": "inject_failure", "class": "nodes[g1]", "count": 8},
			{"at": 500, "action": "repair", "class": "nodes[g1]", "count": 8}
		],
		"assertions": [{"check": "recovers_within", "value": 600}]
	}
}`

// postFleet sends the spec and returns the NDJSON lines.
func postFleet(t *testing.T, h http.Handler, body string) (int, []string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/fleetsim", strings.NewReader(body)))
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	return rec.Code, lines
}

func TestFleetSimEndpoint(t *testing.T) {
	srv := New(Options{Workers: 2})
	h := srv.Handler()

	code, lines := postFleet(t, h, fleetSpec)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, strings.Join(lines, "\n"))
	}
	// Ten epoch lines stream ahead of the terminal result line.
	if len(lines) != 11 {
		t.Fatalf("%d lines, want 10 epochs + result", len(lines))
	}
	for i, line := range lines[:10] {
		var ep FleetEpochLine
		if err := json.Unmarshal([]byte(line), &ep); err != nil {
			t.Fatalf("epoch line %d %q: %v", i, line, err)
		}
		if ep.Kind != FrameProgress || ep.Index != i {
			t.Fatalf("epoch line %d: %+v", i, ep)
		}
	}
	var result ResultLine
	if err := json.Unmarshal([]byte(lines[10]), &result); err != nil {
		t.Fatal(err)
	}
	if result.Kind != FrameResult || result.Cached || result.Key == "" {
		t.Fatalf("terminal line %+v", result)
	}
	var rep struct {
		Epochs           []json.RawMessage `json:"epochs"`
		FailedAssertions int               `json:"failedAssertions"`
		UniqueStates     int               `json:"uniqueStates"`
	}
	if err := json.Unmarshal(result.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 10 || rep.FailedAssertions != 0 || rep.UniqueStates == 0 {
		t.Fatalf("report %+v", rep)
	}

	// A repeated identical spec answers from the cache: one result line,
	// cached=true, same key, byte-identical report.
	code2, lines2 := postFleet(t, h, fleetSpec)
	if code2 != http.StatusOK {
		t.Fatalf("cached status %d", code2)
	}
	if len(lines2) != 1 {
		t.Fatalf("cached answer streamed %d lines, want 1", len(lines2))
	}
	var cached ResultLine
	if err := json.Unmarshal([]byte(lines2[0]), &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached || cached.Key != result.Key {
		t.Fatalf("cached line %+v, want cached=true key=%s", cached, result.Key)
	}
	if string(cached.Result) != string(result.Result) {
		t.Fatal("cached report differs from the computed one")
	}
	if got := srv.Computes(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
}

// TestFleetSimEndpointErrors: a spec without the section, a timeline
// against an unknown class, and malformed JSON are plain 400s.
func TestFleetSimEndpointErrors(t *testing.T) {
	srv := New(Options{})
	h := srv.Handler()
	noBlock := `{
		"name": "svc-fleet-none",
		"system": {"preset": "small"},
		"traffic": {"flits": 16, "flitBytes": [128], "lambda": {"max": 0.01, "points": 4}}
	}`
	badClass := strings.Replace(fleetSpec, `"class": "nodes[g1]"`, `"class": "nodes[g9]"`, 2)
	for name, body := range map[string]string{
		"noBlock":   noBlock,
		"badClass":  badClass,
		"malformed": `{"name": `,
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/fleetsim", strings.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}
}

// TestBatchFleetSimItem runs the simulation through the batch engine:
// the item answers with the same cached payload the endpoint computes.
func TestBatchFleetSimItem(t *testing.T) {
	srv := New(Options{Workers: 2})
	h := srv.Handler()

	body := `{"items": [
		{"id": "fleet", "kind": "fleetsim", "spec": ` + fleetSpec + `},
		{"id": "again", "kind": "fleetsim", "spec": ` + fleetSpec + `}
	]}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 2 results + summary", len(lines))
	}
	var first, second BatchItemLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Error != nil || second.Error != nil {
		t.Fatalf("item errors: %+v / %+v", first.Error, second.Error)
	}
	if first.Key == "" || first.Key != second.Key {
		t.Fatalf("keys %q / %q, want equal and non-empty", first.Key, second.Key)
	}
	if string(first.Result) != string(second.Result) {
		t.Fatal("identical specs answered differently within one batch")
	}
	if got := srv.Computes(); got != 1 {
		t.Fatalf("computed %d times, want 1 (dedup within the batch)", got)
	}
}
