package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net/http"

	"github.com/ccnet/ccnet/internal/canon"
)

// Stable machine-readable error codes of the v1 API. Every non-2xx
// response body — from ccserved and from ccrouter alike — is an
// APIError carrying exactly one of these.
const (
	// CodeBadRequest: the request body itself is broken (malformed
	// JSON, unknown fields, trailing data, oversized body).
	CodeBadRequest = "bad_request"
	// CodeInvalidSpec: the body parsed but the spec it carries is
	// semantically invalid (validation failures, unbuildable systems).
	CodeInvalidSpec = "invalid_spec"
	// CodeShardUnavailable: no replica can answer for the request's
	// shard (router tier; always a 503).
	CodeShardUnavailable = "shard_unavailable"
	// CodeInternal: the service failed; the request may be fine.
	CodeInternal = "internal"
)

// APIError is the one error shape of the v1 API: a stable
// machine-readable code, a human-readable message, the request ID for
// cross-tier tracing, and optional per-field detail lines when a
// validation pass found several problems at once. It is both the body
// of every non-2xx JSON response and the "error" payload of in-band
// NDJSON error frames, at the service and at the router.
type APIError struct {
	Code      string   `json:"code"`
	Message   string   `json:"message"`
	RequestID string   `json:"requestId,omitempty"`
	Details   []string `json:"details,omitempty"`
}

// Error makes APIError usable as a Go error (the router surfaces
// upstream envelopes this way).
func (e *APIError) Error() string { return e.Message }

// NewRequestID mints a 16-hex-digit random request ID. The middleware
// calls it for requests that arrive without an X-Request-ID header;
// ccrouter calls it before forwarding so both tiers log the same ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; serve a
		// fixed marker rather than taking the request down with it.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// RequestIDHeader is the end-to-end tracing header: generated (or
// accepted) at whichever tier sees the request first, echoed on every
// response and every error payload, and forwarded by ccrouter.
const RequestIDHeader = "X-Request-Id"

// RoutedKeyHeader carries the canonical-spec key ccrouter computed when
// it picked the shard. A replica started with TrustRouterKeys uses it
// verbatim as the cache key, skipping its own canonicalization pass.
// The header is part of the trusted router↔replica contract: a replica
// exposed directly to untrusted clients must not enable it, since a
// forged key could alias distinct requests onto one cache entry.
const RoutedKeyHeader = "X-Ccnet-Key"

// ShardHeader names the replica that answered, set by a replica that
// knows its shard ID and passed through by the router.
const ShardHeader = "X-Shard"

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyRoutedKey
)

// WithRequestID attaches a request ID to ctx; the NDJSON error frames
// and APIError bodies read it back via RequestIDFrom.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFrom returns the request ID attached to ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// withRoutedKey attaches the router-computed cache key to ctx.
func withRoutedKey(ctx context.Context, k canon.Key) context.Context {
	return context.WithValue(ctx, ctxKeyRoutedKey, k)
}

// routedKeyFrom returns the trusted router-computed key, or "".
func routedKeyFrom(ctx context.Context) canon.Key {
	k, _ := ctx.Value(ctxKeyRoutedKey).(canon.Key)
	return k
}

// statusFor maps a compute error to its HTTP status: request-caused
// failures (badRequest-tagged anywhere in the chain) are 400, anything
// else is the service's fault.
func statusFor(err error) int {
	var br *badRequestError
	if errors.As(err, &br) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// apiErrorFor shapes err into the wire envelope for status. The code is
// derived, not chosen ad hoc: 400s split into invalid_spec (the spec
// failed validation — badRequest-tagged) versus bad_request (the body
// never parsed), 503 is the router's shard_unavailable, and 5xx is
// internal.
func apiErrorFor(status int, requestID string, err error) APIError {
	code := CodeInternal
	switch {
	case status == http.StatusServiceUnavailable:
		code = CodeShardUnavailable
	case status == http.StatusBadRequest:
		var br *badRequestError
		if errors.As(err, &br) {
			code = CodeInvalidSpec
		} else {
			code = CodeBadRequest
		}
	}
	ae := APIError{Code: code, Message: err.Error(), RequestID: requestID}
	if ms := leafMessages(err); len(ms) > 1 {
		ae.Details = ms
	}
	return ae
}

// leafMessages unwraps err looking for an errors.Join aggregate; a
// multi-error validation failure reports each leaf as one detail line.
func leafMessages(err error) []string {
	for err != nil {
		if m, ok := err.(interface{ Unwrap() []error }); ok {
			var out []string
			for _, e := range m.Unwrap() {
				out = append(out, e.Error())
			}
			return out
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			break
		}
		err = u.Unwrap()
	}
	return nil
}
