package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/ccnet/ccnet/internal/canon"
	"github.com/ccnet/ccnet/internal/metrics"
	"github.com/ccnet/ccnet/internal/reqtrace"
	"github.com/ccnet/ccnet/internal/version"
)

// Hit classes label how a request was answered. They appear as the
// `class` label of ccserved_request_duration_seconds and as the X-Cache
// response header of the JSON endpoints.
const (
	classHit       = "hit"       // answered from the result cache
	classCoalesced = "coalesced" // shared a concurrent identical computation
	classMiss      = "miss"      // computed
	classNone      = "none"      // endpoint has no cache (healthz, stats, batch, …)
)

// serviceMetrics holds the directly-instrumented series. Counters the
// server already maintains as atomics (request totals, computes,
// coalesced, failures) and the cache's own counters are exposed through
// scrape-time callbacks instead, so /metrics and /v1/stats can never
// disagree — both read the same source.
type serviceMetrics struct {
	reg           *metrics.Registry
	requests      *metrics.HistogramVec // ccserved_request_duration_seconds{endpoint,status,class}
	inflight      *metrics.Gauge        // ccserved_inflight_requests
	activeStreams *metrics.GaugeVec     // ccserved_active_streams{endpoint}
	streamLines   *metrics.CounterVec   // ccserved_stream_lines_total{endpoint}
	busyWorkers   *metrics.Gauge        // ccserved_batch_workers_busy
}

// initMetrics builds the registry. Called once from New, after the
// cache and counters exist.
func (s *Server) initMetrics() {
	reg := metrics.NewRegistry()
	m := &serviceMetrics{reg: reg}
	m.requests = reg.HistogramVec("ccserved_request_duration_seconds",
		"Request latency by endpoint, HTTP status and cache hit class.",
		metrics.DefLatencyBuckets, "endpoint", "status", "class")
	m.inflight = reg.Gauge("ccserved_inflight_requests",
		"HTTP requests currently being served.")
	m.activeStreams = reg.GaugeVec("ccserved_active_streams",
		"NDJSON streams currently open, by endpoint.", "endpoint")
	m.streamLines = reg.CounterVec("ccserved_stream_lines_total",
		"NDJSON lines written to streaming responses, by endpoint.", "endpoint")
	m.busyWorkers = reg.Gauge("ccserved_batch_workers_busy",
		"Batch worker-pool goroutines currently executing an item.")

	reg.GaugeFunc("ccserved_worker_pool_size",
		"Configured worker-pool size (sweep, campaign and batch parallelism).",
		func() float64 { return float64(s.workers()) })
	reg.GaugeFunc("ccserved_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("ccserved_singleflight_inflight",
		"Distinct canonical keys currently being computed.",
		func() float64 { return float64(s.flight.Inflight()) })
	reg.GaugeFunc("ccserved_build_info",
		"Always 1; the version label carries the build version.",
		func() float64 { return 1 }, "version", version.Version)

	// Request totals mirror /v1/stats: same atomics, read at scrape.
	const reqHelp = "Requests accepted per compute endpoint (including invalid ones)."
	reg.CounterFunc("ccserved_requests_total", reqHelp,
		func() float64 { return float64(s.evaluates.Load()) }, "endpoint", "evaluate")
	reg.CounterFunc("ccserved_requests_total", reqHelp,
		func() float64 { return float64(s.sweeps.Load()) }, "endpoint", "sweep")
	reg.CounterFunc("ccserved_requests_total", reqHelp,
		func() float64 { return float64(s.campaigns.Load()) }, "endpoint", "campaign")
	reg.CounterFunc("ccserved_requests_total", reqHelp,
		func() float64 { return float64(s.batches.Load()) }, "endpoint", "batch")
	reg.CounterFunc("ccserved_requests_total", reqHelp,
		func() float64 { return float64(s.optimizes.Load()) }, "endpoint", "optimize")
	reg.CounterFunc("ccserved_requests_total", reqHelp,
		func() float64 { return float64(s.perfabs.Load()) }, "endpoint", "performability")
	reg.CounterFunc("ccserved_requests_total", reqHelp,
		func() float64 { return float64(s.fleetsims.Load()) }, "endpoint", "fleetsim")
	reg.CounterFunc("ccserved_batch_items_total", "Batch items accepted.",
		func() float64 { return float64(s.batchItems.Load()) })
	reg.CounterFunc("ccserved_computes_total",
		"Requests that actually computed (not cached, not coalesced).",
		func() float64 { return float64(s.computes.Load()) })
	reg.CounterFunc("ccserved_coalesced_total",
		"Requests that coalesced onto a concurrent identical computation.",
		func() float64 { return float64(s.coalesced.Load()) })
	reg.CounterFunc("ccserved_failures_total", "Requests answered with an error.",
		func() float64 { return float64(s.failures.Load()) })
	reg.CounterFunc("ccserved_response_write_errors_total",
		"Response or stream writes that failed (client disconnects).",
		func() float64 { return float64(s.writeErrors.Load()) })

	// The cache exposes exactly the counters CacheStats reports, read
	// through the same mutex — the /metrics vs /v1/stats parity test
	// pins this.
	reg.CounterFunc("ccserved_cache_hits_total", "Result-cache lookups answered.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("ccserved_cache_misses_total", "Result-cache lookups missed.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("ccserved_cache_evictions_total", "Entries evicted by the LRU bounds.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.CounterFunc("ccserved_cache_expirations_total", "Entries expired by TTL.",
		func() float64 { return float64(s.cache.Stats().Expirations) })
	reg.GaugeFunc("ccserved_cache_entries", "Entries currently cached.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("ccserved_cache_bytes", "Bytes currently cached (keys + payloads + overhead).",
		func() float64 { return float64(s.cache.Stats().Bytes) })

	// Tracer counters join the same scrape-time-callback scheme so the
	// tracing layer needs no metrics dependency of its own.
	if tr := s.opt.Tracer; tr != nil {
		reg.CounterFunc("ccserved_traces_started_total", "Request traces started (sampled or not).",
			func() float64 { return float64(tr.Stats().Started) })
		reg.CounterFunc("ccserved_traces_sampled_total", "Request traces that recorded spans.",
			func() float64 { return float64(tr.Stats().Sampled) })
		reg.CounterFunc("ccserved_traces_exported_total", "Completed traces exported to the ring/sink.",
			func() float64 { return float64(tr.Stats().Exported) })
		reg.CounterFunc("ccserved_traces_slow_total", "Exported traces at or above the slow threshold.",
			func() float64 { return float64(tr.Stats().Slow) })
		reg.CounterFunc("ccserved_traces_errored_total", "Exported traces that ended in error.",
			func() float64 { return float64(tr.Stats().Errored) })
		reg.CounterFunc("ccserved_trace_spans_dropped_total", "Spans discarded by the per-trace cap.",
			func() float64 { return float64(tr.Stats().DroppedSpans) })
	}

	metrics.RegisterGoRuntime(reg)
	s.m = m
}

// Metrics exposes the registry (for tests and embedding servers).
func (s *Server) Metrics() *metrics.Registry { return s.m.reg }

// endpointLabel maps a request path to a bounded label set — unknown
// paths collapse into "other" so scrapes cannot be grown unboundedly by
// probe traffic.
func endpointLabel(path string) string {
	name := strings.TrimPrefix(path, "/v1/")
	name = strings.TrimPrefix(name, "/")
	switch name {
	case "evaluate", "sweep", "campaign", "batch", "optimize", "performability",
		"fleetsim", "healthz", "stats", "metrics", "version", "traces":
		return name
	}
	return "other"
}

// statusWriter captures the response status and hit class for the
// middleware, passing Flush through so the NDJSON endpoints keep
// streaming incrementally. It also rewrites the mux's own plain-text
// 404/405 bodies into the APIError envelope, so *every* non-2xx body
// the service emits has the one documented shape.
type statusWriter struct {
	http.ResponseWriter
	status   int
	hitClass string
	reqID    string
	trace    *reqtrace.Trace
	suppress bool // swallowing a replaced plain-text error body
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		// Last moment headers can change: attach the stage breakdown of
		// everything traced so far. JSON endpoints have fully computed by
		// now; streaming endpoints commit their 200 before computing, so
		// their header carries only the pre-stream stages (documented in
		// MONITORING.md).
		if st := w.trace.ServerTiming(); st != "" {
			w.Header().Add("Server-Timing", st)
		}
	}
	// Our handlers never emit a bare 404/405 — those come from the
	// ServeMux (http.Error: text/plain). Replace the body with the
	// typed envelope and drop the plain-text writes that follow.
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!w.suppress && strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		w.suppress = true
		msg := "unknown endpoint"
		if code == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		w.Header().Set("Content-Type", "application/json")
		w.ResponseWriter.WriteHeader(code)
		b, _ := json.Marshal(APIError{Code: CodeBadRequest, Message: msg, RequestID: w.reqID})
		w.ResponseWriter.Write(append(b, '\n'))
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if w.suppress {
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) setHitClass(c string) { w.hitClass = c }

func (w *statusWriter) statusCode() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// hitClassSetter lets the streaming endpoints report their hit class to
// the middleware after the status line is already committed (a cached
// optimize answer is one NDJSON line, but the 200 went out before the
// cache was consulted). Non-HTTP writers (ccscen's stdout) simply don't
// implement it.
type hitClassSetter interface{ setHitClass(string) }

// setHitClass records class on w when the middleware is watching.
func setHitClass(w any, class string) {
	if cs, ok := w.(hitClassSetter); ok {
		cs.setHitClass(class)
	}
}

// instrument wraps the route table: request-ID generation/propagation
// (X-Request-Id accepted or minted, echoed on the response, attached to
// the context for error envelopes), trusted router-key extraction, the
// X-Shard header when the replica knows its shard, an in-flight gauge
// around the handler and one histogram observation per request, labeled
// by endpoint, status and hit class. The hit class comes from the
// streaming endpoints' setHitClass or the JSON endpoints' X-Cache
// header; endpoints without a cache record "none".
//
// It is also where a request's trace begins and ends: POST requests
// (the compute endpoints — probes and the observability GETs would
// only flood the ring) adopt the inbound traceparent or mint one, and
// the completed trace is exported after the handler returns.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		if s.opt.ShardID != "" {
			w.Header().Set(ShardHeader, s.opt.ShardID)
		}
		ctx := WithRequestID(r.Context(), id)
		if s.opt.TrustRouterKeys {
			if k := canon.Key(r.Header.Get(RoutedKeyHeader)); k.Valid() {
				ctx = withRoutedKey(ctx, k)
			}
		}
		var tr *reqtrace.Trace
		if r.Method == http.MethodPost {
			ctx, tr = s.opt.Tracer.StartRequest(ctx, r.Method+" "+r.URL.Path,
				r.Header.Get(reqtrace.Header), id)
			tr.SetShard(s.opt.ShardID)
		}
		r = r.WithContext(ctx)

		s.m.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, reqID: id, trace: tr}
		next.ServeHTTP(sw, r)
		s.m.inflight.Add(-1)
		class := sw.hitClass
		if class == "" {
			class = sw.Header().Get("X-Cache")
		}
		if class == "" {
			class = classNone
		}
		s.m.requests.With(endpointLabel(r.URL.Path), strconv.Itoa(sw.statusCode()), class).
			Observe(time.Since(start).Seconds())
		tr.End(sw.statusCode(), nil)
	})
}
