package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// doJSON posts body and decodes the response into out (if non-nil),
// returning the status code and raw body.
func doJSON(t *testing.T, method, url, body string, out any) (int, string) {
	t.Helper()
	var resp *http.Response
	var err error
	switch method {
	case http.MethodGet:
		resp, err = http.Get(url)
	default:
		resp, err = http.Post(url, "application/json", strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body2, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw := string(body2)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body2, out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode, raw
}

const smallEvaluate = `{
	"system": {"preset": "small"},
	"message": {"flits": 32, "flitBytes": 256},
	"lambda": 1e-4
}`

const smallSweep = `{
	"system": {"preset": "small"},
	"message": {"flits": 32, "flitBytes": 256},
	"lambda": {"min": 1e-5, "max": 1e-3, "points": 16}
}`

const smallCampaign = `{
	"name": "svc-test",
	"system": {"preset": "small"},
	"traffic": {"flits": 32, "flitBytes": [256], "lambda": {"max": 1e-3, "points": 4}},
	"assertions": [{"type": "monotonic"}]
}`

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var out map[string]any
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", "", &out)
	if code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, body)
	}
	if out["status"] != "ok" {
		t.Errorf("status = %v, want ok", out["status"])
	}
	if out["version"] == "" {
		t.Error("version missing")
	}
}

func TestEvaluateComputesAndCaches(t *testing.T) {
	srv, ts := newTestServer(t)

	var env Envelope
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/evaluate", smallEvaluate, &env)
	if code != http.StatusOK {
		t.Fatalf("evaluate = %d: %s", code, body)
	}
	if env.Cached {
		t.Error("first request reported cached")
	}
	if !strings.HasPrefix(env.Key, "v1:") {
		t.Errorf("key %q missing canon scheme", env.Key)
	}
	var res EvaluateResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Saturated || res.MeanLatency == nil || *res.MeanLatency <= 0 {
		t.Errorf("unexpected result: %+v", res)
	}
	if res.System.Nodes != 24 || res.System.Clusters != 4 {
		t.Errorf("system info = %+v, want small preset (24 nodes, 4 clusters)", res.System)
	}

	// Identical request (different JSON spelling) must hit the cache.
	respelled := `{"lambda": 1.0e-4, "message": {"flitBytes": 256, "flits": 32}, "system": {"preset": "small"}}`
	var env2 Envelope
	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/evaluate", respelled, &env2)
	if code != http.StatusOK {
		t.Fatalf("second evaluate = %d: %s", code, body)
	}
	if !env2.Cached {
		t.Error("respelled identical request missed the cache")
	}
	if env2.Key != env.Key {
		t.Errorf("respelled request keyed %s, first keyed %s", env2.Key, env.Key)
	}
	if got := srv.Computes(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}

	// A different lambda must compute anew.
	var env3 Envelope
	doJSON(t, http.MethodPost, ts.URL+"/v1/evaluate", strings.Replace(smallEvaluate, "1e-4", "2e-4", 1), &env3)
	if env3.Cached || env3.Key == env.Key {
		t.Error("distinct request aliased the cached one")
	}
}

func TestEvaluateSaturatedIsNull(t *testing.T) {
	_, ts := newTestServer(t)
	body := strings.Replace(smallEvaluate, "1e-4", "0.9", 1)
	var env Envelope
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/evaluate", body, &env)
	if code != http.StatusOK {
		t.Fatalf("evaluate = %d: %s", code, raw)
	}
	var res EvaluateResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || res.MeanLatency != nil {
		t.Errorf("saturated rate returned %+v, want saturated with null latency", res)
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed", `{"system": `, "unexpected EOF"},
		{"unknownField", `{"system": {"preset": "small"}, "mesage": {}, "lambda": 1e-4}`, "unknown field"},
		{"typeError", `{"system": {"preset": 5}, "message": {"flits": 32, "flitBytes": 256}, "lambda": 1e-4}`, "system"},
		{"badLambda", `{"system": {"preset": "small"}, "message": {"flits": 32, "flitBytes": 256}, "lambda": -1}`, "lambda: must be a positive finite rate"},
		{"badFlits", `{"system": {"preset": "small"}, "message": {"flits": 0, "flitBytes": 256}, "lambda": 1e-4}`, "message.flits: must be positive"},
		{"badPreset", `{"system": {"preset": "huge"}, "message": {"flits": 32, "flitBytes": 256}, "lambda": 1e-4}`, "system.preset: unknown preset"},
		{"badVariant", `{"system": {"preset": "small"}, "message": {"flits": 32, "flitBytes": 256}, "model": {"variant": "x"}, "lambda": 1e-4}`, "model.variant: unknown variant"},
		{"badPorts", `{"system": {"ports": 3, "clusters": [{"count": 4, "treeLevels": 1}]}, "message": {"flits": 32, "flitBytes": 256}, "lambda": 1e-4}`, "system.ports: must be an even integer"},
		{"trailing", smallEvaluate + ` {"again": true}`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/evaluate", tc.body, nil)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", code, raw)
			}
			if !strings.Contains(raw, tc.wantErr) {
				t.Errorf("error %q does not mention %q", raw, tc.wantErr)
			}
		})
	}
}

func TestSweepGridAndCache(t *testing.T) {
	srv, ts := newTestServer(t)
	var env Envelope
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", smallSweep, &env)
	if code != http.StatusOK {
		t.Fatalf("sweep = %d: %s", code, raw)
	}
	var res SweepResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 16 {
		t.Fatalf("points = %d, want 16", len(res.Points))
	}
	if res.SaturationPoint <= 0 {
		t.Errorf("saturation point = %v", res.SaturationPoint)
	}
	var prev float64
	for i, p := range res.Points {
		if p.Saturated {
			continue
		}
		if p.MeanLatency == nil || *p.MeanLatency < prev {
			t.Fatalf("point %d: latency not nondecreasing (%v after %v)", i, p.MeanLatency, prev)
		}
		prev = *p.MeanLatency
	}

	var env2 Envelope
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", smallSweep, &env2)
	if !env2.Cached || env2.Key != env.Key {
		t.Error("identical sweep did not hit the cache")
	}
	if got := srv.Computes(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
}

func TestSweepAutoGrid(t *testing.T) {
	srv, ts := newTestServer(t)
	body := `{
		"system": {"preset": "small"},
		"message": {"flits": 32, "flitBytes": 256},
		"lambda": {"auto": true, "points": 8}
	}`
	var env Envelope
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", body, &env)
	if code != http.StatusOK {
		t.Fatalf("auto sweep = %d: %s", code, raw)
	}
	var res SweepResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("points = %d, want 8", len(res.Points))
	}
	// An auto grid stops at 95% of saturation: every point stays stable.
	for i, p := range res.Points {
		if p.Saturated {
			t.Errorf("auto-grid point %d saturated at λ=%v", i, p.Lambda)
		}
	}

	// Auto sweeps key on the un-materialized lambda spec, so repeats hit
	// the cache without paying the saturation bisection; spelling the
	// default autoFraction explicitly must land on the same entry.
	var env2 Envelope
	explicit := strings.Replace(body, `"auto": true`, `"auto": true, "autoFraction": 0.95`, 1)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", explicit, &env2)
	if !env2.Cached || env2.Key != env.Key {
		t.Errorf("explicit-default auto sweep keyed %s cached=%v, want cache hit on %s",
			env2.Key, env2.Cached, env.Key)
	}
	if got := srv.Computes(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, wantErr string
	}{
		{"descendingValues", `{"system": {"preset": "small"}, "message": {"flits": 32, "flitBytes": 256}, "lambda": {"values": [2e-4, 1e-4]}}`, "lambda.values"},
		{"noPoints", `{"system": {"preset": "small"}, "message": {"flits": 32, "flitBytes": 256}, "lambda": {"max": 1e-3}}`, "lambda.points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", tc.body, nil)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", code, raw)
			}
			if !strings.Contains(raw, tc.wantErr) {
				t.Errorf("error %q does not mention %q", raw, tc.wantErr)
			}
		})
	}
}

func TestCampaignRunsSpec(t *testing.T) {
	srv, ts := newTestServer(t)
	var env Envelope
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaign", smallCampaign, &env)
	if code != http.StatusOK {
		t.Fatalf("campaign = %d: %s", code, raw)
	}
	var res CampaignResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Name != "svc-test" || !res.Passed {
		t.Errorf("result = %+v, want passed svc-test", res)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 4 {
		t.Fatalf("series layout = %+v, want 1 series × 4 points", res.Series)
	}
	if len(res.Assertions) != 1 || !res.Assertions[0].Pass {
		t.Errorf("assertions = %+v", res.Assertions)
	}

	var env2 Envelope
	doJSON(t, http.MethodPost, ts.URL+"/v1/campaign", smallCampaign, &env2)
	if !env2.Cached || env2.Key != env.Key {
		t.Error("identical campaign did not hit the cache")
	}
	if got := srv.Computes(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}

	// seed: 1 is the runner default; it must share the omitted-seed entry.
	withSeed := strings.Replace(smallCampaign, `"name": "svc-test",`, `"name": "svc-test", "seed": 1,`, 1)
	var env3 Envelope
	doJSON(t, http.MethodPost, ts.URL+"/v1/campaign", withSeed, &env3)
	if env3.Key != env.Key {
		t.Errorf("seed:1 keyed %s, omitted seed keyed %s; want equal", env3.Key, env.Key)
	}
}

func TestCampaignValidation(t *testing.T) {
	_, ts := newTestServer(t)
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaign",
		`{"system": {"preset": "small"}, "traffic": {"flits": 32, "flitBytes": [256], "lambda": {"max": 1e-3, "points": 4}}}`, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", code, raw)
	}
	if !strings.Contains(raw, "name: required") {
		t.Errorf("error %q does not carry the field path", raw)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/evaluate", "", nil)
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate = %d, want 405", code)
	}
	resp, err := http.Post(ts.URL+"/v1/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/healthz = %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentIdenticalRequestsComputeOnce fires many identical sweep
// requests at once: between the cache and singleflight coalescing the
// model must be computed exactly once, and exactly one response may
// report cached=false.
func TestConcurrentIdenticalRequestsComputeOnce(t *testing.T) {
	srv, ts := newTestServer(t)
	const clients = 16
	body := `{
		"system": {"preset": "N=1120"},
		"message": {"flits": 32, "flitBytes": 256},
		"lambda": {"min": 1e-5, "max": 4.5e-4, "points": 64}
	}`
	var wg sync.WaitGroup
	uncached := make([]bool, clients)
	keys := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var env Envelope
			code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", body, &env)
			if code != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, code, raw)
				return
			}
			uncached[i] = !env.Cached
			keys[i] = env.Key
		}(i)
	}
	wg.Wait()

	if got := srv.Computes(); got != 1 {
		t.Errorf("computes = %d, want exactly 1 for %d concurrent identical requests", got, clients)
	}
	n := 0
	for _, u := range uncached {
		if u {
			n++
		}
	}
	if n != 1 {
		t.Errorf("%d responses reported cached=false, want exactly 1", n)
	}
	for i := 1; i < clients; i++ {
		if keys[i] != keys[0] {
			t.Fatalf("client %d keyed %s, client 0 keyed %s", i, keys[i], keys[0])
		}
	}
}

func TestStatsCounters(t *testing.T) {
	_, ts := newTestServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/v1/evaluate", smallEvaluate, nil)
	doJSON(t, http.MethodPost, ts.URL+"/v1/evaluate", smallEvaluate, nil)
	doJSON(t, http.MethodPost, ts.URL+"/v1/evaluate", `{"bad`, nil)

	var stats StatsResult
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "", &stats)
	if code != http.StatusOK {
		t.Fatalf("stats = %d: %s", code, raw)
	}
	if stats.Evaluates != 3 {
		t.Errorf("evaluates = %d, want 3", stats.Evaluates)
	}
	if stats.Computes != 1 {
		t.Errorf("computes = %d, want 1", stats.Computes)
	}
	if stats.Failures != 1 {
		t.Errorf("failures = %d, want 1", stats.Failures)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 entry", stats.Cache)
	}
	if stats.Workers != 2 {
		t.Errorf("workers = %d, want 2", stats.Workers)
	}
}
