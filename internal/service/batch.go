package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/ccnet/ccnet/internal/batch"
	"github.com/ccnet/ccnet/internal/canon"
	"github.com/ccnet/ccnet/internal/reqtrace"
	"github.com/ccnet/ccnet/internal/scenario"
)

// maxBatchBytes bounds a whole batch request body; individual items are
// small (the per-request limit is maxBodyBytes) but a batch carries many.
const maxBatchBytes = 16 << 20

// BatchRequest is the body of POST /v1/batch (and the document `ccscen
// batch` reads): an ordered list of heterogeneous work items. Results
// stream back as NDJSON in item order — one BatchItemLine ("progress"
// frame) per item, then one terminal ResultLine carrying the
// batch.Summary.
type BatchRequest struct {
	Items []batch.Item `json:"items"`
}

// ParseBatch decodes one batch request document, rejecting unknown
// fields and trailing data, and checks the item envelope (kinds are
// validated per item at execution so one bad item fails alone, but an
// oversized batch fails the whole request). An empty input stream, an
// empty object and an empty items list all decode to a zero-item batch:
// RunBatch answers it with a valid zero-item summary line rather than an
// error, so generated pipelines that happen to produce no work degrade
// gracefully.
func ParseBatch(r io.Reader) (*BatchRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		if errors.Is(err, io.EOF) {
			return &BatchRequest{}, nil
		}
		return nil, scenario.DecodeError(err)
	}
	if dec.More() {
		return nil, errors.New("trailing data after the batch object")
	}
	if len(req.Items) > batch.MaxItems {
		return nil, fmt.Errorf("items: %d items exceed the %d-item limit", len(req.Items), batch.MaxItems)
	}
	return &req, nil
}

// RunBatch shards the items across the server's worker pool and streams
// one NDJSON "progress" frame per item (in item order, each line
// written as soon as its item — and all earlier ones — complete)
// followed by a terminal "result" frame carrying the summary, flushing
// after every line when w is an http.Flusher. Each item consults the
// canonical-spec result cache exactly like its single-request endpoint.
// Cancelling ctx (a streaming client hanging up) stops the batch: items
// not yet started never run, items already computing finish (the model
// evaluation itself is not interruptible) and are discarded. The error
// reports why the stream ended early, while per-item failures are
// reported inline — as APIError payloads on their progress frames — and
// do not abort the batch.
func (s *Server) RunBatch(ctx context.Context, items []batch.Item, w io.Writer) (batch.Summary, error) {
	s.batches.Add(1)
	s.batchItems.Add(uint64(len(items)))
	st, done := s.newStream(ctx, "batch", w)
	defer done()
	// A sampled trace sees each item twice: a "queue" span for the wait
	// between batch start and worker pickup, and an "item" span for the
	// execution itself (whose cache/compute spans land inline via the
	// shared per-kind paths). Large batches overflow the per-trace span
	// cap; the exported droppedSpans marker says so.
	exec := s.exec
	if tr := reqtrace.FromContext(ctx); tr.Sampled() {
		batchStart := time.Now()
		exec = func(ctx context.Context, index int, it batch.Item) batch.Outcome {
			pickup := time.Now()
			tr.RecordSpan("queue", batchStart, pickup.Sub(batchStart)).
				Attr(reqtrace.Int("index", int64(index)))
			o := s.exec(ctx, index, it)
			tr.RecordSpan("item", pickup, time.Since(pickup)).
				Attr(reqtrace.Int("index", int64(index)), reqtrace.String("kind", it.Kind))
			return o
		}
	}
	eng := &batch.Engine{Workers: s.workers(), Exec: exec}
	sum, err := eng.Run(ctx, items, func(o batch.Outcome) error {
		line := BatchItemLine{
			Kind:     FrameProgress,
			Index:    o.Index,
			ID:       o.ID,
			ItemKind: o.Kind,
			Cached:   o.Cached,
			Key:      o.Key,
			Seconds:  o.Elapsed.Seconds(),
			Result:   o.Payload,
		}
		if o.Err != nil {
			ae := apiErrorFor(statusFor(o.Err), st.reqID, o.Err)
			line.Error = &ae
		}
		// An emit failure is the client hanging up mid-stream: abort the
		// batch cleanly (the engine stops scheduling new items).
		return st.emit(line)
	})
	if err != nil {
		return sum, err
	}
	payload, err := json.Marshal(sum)
	if err != nil {
		return sum, err
	}
	return sum, st.emitResult(false, "", payload)
}

// execBatchItem dispatches one item to the kind's shared compute path.
// Item errors come back in the Outcome; the batch itself never fails on
// one item.
func (s *Server) execBatchItem(ctx context.Context, index int, it batch.Item) batch.Outcome {
	o := batch.Outcome{}
	fail := func(err error) batch.Outcome {
		s.failures.Add(1)
		o.Err = err
		return o
	}
	if len(it.Spec) == 0 {
		return fail(badRequest(fmt.Errorf("item %d: spec: required", index)))
	}
	var payload []byte
	var key canon.Key
	var class string
	var err error
	switch it.Kind {
	case "evaluate":
		var req EvaluateRequest
		if derr := decodeSpec(it.Spec, &req); derr != nil {
			return fail(badRequest(fmt.Errorf("item %d: %w", index, derr)))
		}
		payload, key, class, err = s.evaluate(ctx, &req, "")
	case "sweep":
		var req SweepRequest
		if derr := decodeSpec(it.Spec, &req); derr != nil {
			return fail(badRequest(fmt.Errorf("item %d: %w", index, derr)))
		}
		payload, key, class, err = s.sweep(ctx, &req, "")
	case "campaign":
		spec, perr := scenario.Parse(bytes.NewReader(it.Spec), fmt.Sprintf("item %d", index))
		if perr != nil {
			return fail(badRequest(perr))
		}
		payload, key, class, err = s.campaign(ctx, spec, "")
	case "performability":
		spec, perr := scenario.Parse(bytes.NewReader(it.Spec), fmt.Sprintf("item %d", index))
		if perr != nil {
			return fail(badRequest(perr))
		}
		if spec.Performability == nil {
			return fail(badRequest(fmt.Errorf("item %d: performability: section required", index)))
		}
		payload, key, class, err = s.performability(ctx, spec, "")
	case "fleetsim":
		spec, perr := scenario.Parse(bytes.NewReader(it.Spec), fmt.Sprintf("item %d", index))
		if perr != nil {
			return fail(badRequest(perr))
		}
		if spec.FleetSim == nil {
			return fail(badRequest(fmt.Errorf("item %d: fleetsim: section required", index)))
		}
		payload, key, class, err = s.fleetsimItem(ctx, spec, "")
	default:
		return fail(badRequest(fmt.Errorf("item %d: kind: unknown kind %q (valid: evaluate, sweep, campaign, performability, fleetsim)", index, it.Kind)))
	}
	if err != nil {
		return fail(fmt.Errorf("item %d: %w", index, err))
	}
	o.Payload = payload
	o.Key = string(key)
	o.Cached = cachedClass(class)
	return o
}

// decodeSpec strictly decodes one item spec document.
func decodeSpec(spec json.RawMessage, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return scenario.DecodeError(err)
	}
	if dec.More() {
		return errors.New("trailing data after the spec object")
	}
	return nil
}

// handleBatch serves POST /v1/batch: the request is decoded up front
// (any envelope problem is a plain 400), then results stream back
// incrementally as chunked NDJSON. A client that disconnects stops the
// remaining (not yet started) work via the request context.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	req, err := ParseBatch(r.Body)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Streaming has begun: errors from here on (client gone, encode
	// failure) cannot change the status; the absent summary line tells
	// the client the stream was truncated.
	_, _ = s.RunBatch(r.Context(), req.Items, w)
}
