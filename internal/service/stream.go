package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"

	"github.com/ccnet/ccnet/internal/canon"
	"github.com/ccnet/ccnet/internal/fleetsim"
	"github.com/ccnet/ccnet/internal/metrics"
	"github.com/ccnet/ccnet/internal/optimize"
	"github.com/ccnet/ccnet/internal/perfab"
)

// Every streaming endpoint (batch, optimize, performability, fleetsim)
// emits the same NDJSON line schema: zero or more "progress" frames
// carrying endpoint-specific fields, then exactly one terminal frame —
// a "result" (ResultLine) on success or an "error" (ErrorLine) when the
// computation died after the status line committed. Clients dispatch on
// the "kind" field alone and never need per-endpoint framing logic.
const (
	FrameProgress = "progress"
	FrameResult   = "result"
	FrameError    = "error"
)

// ResultLine is the terminal success frame of every streaming endpoint:
// the canonical cache key (empty for batch, whose summary is not a
// cacheable result), whether the result came from the cache, and the
// endpoint's result document (optimize report, performability report,
// fleetsim report, or batch summary).
type ResultLine struct {
	Kind   string          `json:"kind"` // always "result"
	Cached bool            `json:"cached"`
	Key    string          `json:"key,omitempty"`
	Result json.RawMessage `json:"result"`
}

// ErrorLine is the terminal in-band error frame: the same APIError
// envelope the JSON endpoints return as a non-2xx body, delivered on a
// stream whose HTTP status already committed to 200.
type ErrorLine struct {
	Kind  string   `json:"kind"` // always "error"
	Error APIError `json:"error"`
}

// OptimizeProgressLine is one incremental update of a running
// design-space search.
type OptimizeProgressLine struct {
	Kind string `json:"kind"` // always "progress"
	optimize.Progress
}

// PerfProgressLine is one incremental update of a running
// performability analysis.
type PerfProgressLine struct {
	Kind string `json:"kind"` // always "progress"
	perfab.Progress
}

// FleetEpochLine is one trajectory epoch of a running fleet simulation,
// streamed as soon as every state occupying the epoch has evaluated.
type FleetEpochLine struct {
	Kind string `json:"kind"` // always "progress"
	fleetsim.EpochMetrics
}

// BatchItemLine is one batch item's outcome: the item's position and
// identity, how it was answered (cache hit or computed), and either the
// endpoint-specific result document or the item's APIError.
type BatchItemLine struct {
	Kind     string          `json:"kind"` // always "progress"
	Index    int             `json:"index"`
	ID       string          `json:"id,omitempty"`
	ItemKind string          `json:"itemKind,omitempty"`
	Cached   bool            `json:"cached"`
	Key      string          `json:"key,omitempty"`
	Seconds  float64         `json:"seconds"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    *APIError       `json:"error,omitempty"`
}

// stream bundles the per-endpoint NDJSON plumbing every streaming
// handler shares: one encoder, flush-per-line when the writer is an
// http.Flusher, the per-endpoint line counter, write-error accounting,
// and the request ID for error frames.
type stream struct {
	srv     *Server
	enc     *json.Encoder
	flusher http.Flusher
	lines   *metrics.Counter
	reqID   string
}

// newStream opens the per-endpoint stream accounting; the returned
// closer decrements the active-streams gauge.
func (s *Server) newStream(ctx context.Context, endpoint string, w io.Writer) (*stream, func()) {
	g := s.m.activeStreams.With(endpoint)
	g.Add(1)
	flusher, _ := w.(http.Flusher)
	return &stream{
		srv:     s,
		enc:     json.NewEncoder(w),
		flusher: flusher,
		lines:   s.m.streamLines.With(endpoint),
		reqID:   RequestIDFrom(ctx),
	}, func() { g.Add(-1) }
}

// emit writes one frame line, counting and flushing it. An encode
// failure means the client hung up: it is counted in writeErrors and
// returned so the caller can stop streaming.
func (st *stream) emit(line any) error {
	if err := st.enc.Encode(line); err != nil {
		st.srv.writeErrors.Add(1)
		return err
	}
	st.lines.Inc()
	if st.flusher != nil {
		st.flusher.Flush()
	}
	return nil
}

// emitResult writes the terminal success frame.
func (st *stream) emitResult(cached bool, key canon.Key, payload []byte) error {
	return st.emit(ResultLine{Kind: FrameResult, Cached: cached, Key: string(key), Result: payload})
}

// emitError writes the terminal in-band error frame. Encode errors here
// mean the client is gone — nothing left to tell it.
func (st *stream) emitError(err error) {
	_ = st.emit(ErrorLine{Kind: FrameError, Error: apiErrorFor(statusFor(err), st.reqID, err)})
}
