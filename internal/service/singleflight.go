package service

import (
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent computations of the same canonical
// key: the first caller runs fn, later callers with the same key block
// and share its result. Unlike a cache, nothing is retained once the
// flight lands — the result cache in front of the group handles reuse
// across time; the group only collapses the concurrent window where a
// result is still being computed.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn under key, returning its payload, error, and whether this
// caller shared another caller's in-flight computation instead of
// running fn itself.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// The flight must land even if fn panics — otherwise the map entry
	// and WaitGroup would wedge every future request with this key. The
	// panic becomes an error delivered to all callers (for the HTTP
	// server that is a 500, which beats a permanently hung endpoint).
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("service: compute panicked: %v", r)
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			c.wg.Done()
		}()
		c.val, c.err = fn()
	}()
	return c.val, c.err, false
}

// Inflight reports how many distinct keys are currently being computed.
func (g *flightGroup) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
