// Package service exposes the analytical model and the scenario engine
// over HTTP (see cmd/ccserved): POST /v1/evaluate, /v1/sweep and
// /v1/campaign compute through a canonical-spec result cache — requests
// are canonicalized and hashed by internal/canon, identical in-flight
// requests coalesce onto one computation, and finished results are held
// in a bytes- and entry-bounded LRU with TTL — while GET /v1/healthz and
// /v1/stats report liveness and cache effectiveness.
package service

import (
	"container/list"
	"sync"
	"time"

	"github.com/ccnet/ccnet/internal/canon"
)

// entryOverhead approximates the per-entry bookkeeping cost (list
// element, map slot, entry struct) charged against MaxBytes on top of the
// key and payload lengths.
const entryOverhead = 128

// Cache is a thread-safe LRU result cache bounded by entry count and
// total bytes, with a per-entry TTL. Values are opaque byte payloads
// (the service stores encoded response bodies). The zero value is not
// usable; construct with NewCache.
type Cache struct {
	mu      sync.Mutex
	ll      *list.List // front = most recently used
	items   map[canon.Key]*list.Element
	bytes   int64
	max     int
	maxB    int64
	ttl     time.Duration
	now     func() time.Time // injectable clock for TTL tests
	hits    uint64
	misses  uint64
	evicted uint64
	expired uint64
}

type cacheEntry struct {
	key     canon.Key
	val     []byte
	size    int64
	expires time.Time // zero = never
}

// NewCache builds a cache holding at most maxEntries entries and
// maxBytes total bytes (each <= 0 means unbounded on that axis, but not
// both), expiring entries ttl after insertion (ttl <= 0 disables
// expiry).
func NewCache(maxEntries int, maxBytes int64, ttl time.Duration) *Cache {
	return &Cache{
		ll:    list.New(),
		items: make(map[canon.Key]*list.Element),
		max:   maxEntries,
		maxB:  maxBytes,
		ttl:   ttl,
		now:   time.Now,
	}
}

// Get returns the payload cached under k, marking it most recently used.
// An expired entry is removed and reported as a miss.
func (c *Cache) Get(k canon.Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.expired++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.val, true
}

// Put caches payload v under k, replacing any previous entry, then
// evicts least-recently-used entries until both bounds hold. A payload
// that alone exceeds MaxBytes is not cached.
func (c *Cache) Put(k canon.Key, v []byte) {
	size := int64(len(k)) + int64(len(v)) + entryOverhead
	if c.maxB > 0 && size > c.maxB {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.removeLocked(el)
	}
	e := &cacheEntry{key: k, val: v, size: size}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	c.items[k] = c.ll.PushFront(e)
	c.bytes += size
	for (c.max > 0 && c.ll.Len() > c.max) || (c.maxB > 0 && c.bytes > c.maxB) {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evicted++
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries     int     `json:"entries"`
	Bytes       int64   `json:"bytes"`
	MaxEntries  int     `json:"maxEntries"`
	MaxBytes    int64   `json:"maxBytes"`
	TTLSeconds  float64 `json:"ttlSeconds"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Evictions   uint64  `json:"evictions"`
	Expirations uint64  `json:"expirations"`
	// HitRate is hits/(hits+misses); 0 before any lookup.
	HitRate float64 `json:"hitRate"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Entries:     c.ll.Len(),
		Bytes:       c.bytes,
		MaxEntries:  c.max,
		MaxBytes:    c.maxB,
		TTLSeconds:  c.ttl.Seconds(),
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evicted,
		Expirations: c.expired,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
