package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"github.com/ccnet/ccnet/internal/canon"
	"github.com/ccnet/ccnet/internal/optimize"
	"github.com/ccnet/ccnet/internal/scenario"
	"github.com/ccnet/ccnet/internal/version"
)

// TestVersionEndpoint pins the /v1/version document: build version, API
// version, canonicalization scheme, scenario schema and shard identity.
func TestVersionEndpoint(t *testing.T) {
	srv := New(Options{ShardID: "shard-7"})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/version", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var v VersionResult
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Version != version.Version || v.APIVersion != APIVersion {
		t.Errorf("version %+v", v)
	}
	if v.CacheScheme != canon.Scheme || v.ModelSchema != scenario.SchemaVersion {
		t.Errorf("schema versions %+v", v)
	}
	if v.GoVersion == "" {
		t.Error("goVersion missing")
	}
	if v.ShardID != "shard-7" {
		t.Errorf("shardID %q, want shard-7", v.ShardID)
	}
	if got := rec.Header().Get(ShardHeader); got != "shard-7" {
		t.Errorf("X-Shard header %q", got)
	}
}

// TestHealthzTyped pins the typed healthz document and its shard field.
func TestHealthzTyped(t *testing.T) {
	srv := New(Options{ShardID: "s1"})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	var h HealthzResult
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != version.Version || h.ShardID != "s1" || h.UptimeSeconds < 0 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestEveryErrorBodyIsAPIError drives every way the service can answer
// non-2xx — unknown endpoint, wrong method, unparsable body, invalid
// spec, oversized body — and checks each body decodes into an APIError
// with a stable code and a request ID. This is the one-error-shape
// contract the router tier reuses verbatim.
func TestEveryErrorBodyIsAPIError(t *testing.T) {
	srv := New(Options{})
	h := srv.Handler()
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"unknownEndpoint", http.MethodGet, "/v1/nope", "", http.StatusNotFound, CodeBadRequest},
		{"rootPath", http.MethodGet, "/", "", http.StatusNotFound, CodeBadRequest},
		{"wrongMethod", http.MethodGet, "/v1/evaluate", "", http.StatusMethodNotAllowed, CodeBadRequest},
		{"malformedJSON", http.MethodPost, "/v1/evaluate", `{"system":`, http.StatusBadRequest, CodeBadRequest},
		{"unknownField", http.MethodPost, "/v1/evaluate", `{"bogus": 1}`, http.StatusBadRequest, CodeBadRequest},
		{"invalidEvaluate", http.MethodPost, "/v1/evaluate",
			`{"system": {"preset": "small"}, "message": {"flits": -4, "flitBytes": 256}, "lambda": 1e-4}`,
			http.StatusBadRequest, CodeInvalidSpec},
		{"invalidCampaign", http.MethodPost, "/v1/campaign",
			`{"name": "x", "system": {"preset": "small"}, "traffic": {"flits": 0, "flitBytes": [256], "lambda": {"max": 1e-4, "points": 3}}}`,
			http.StatusBadRequest, CodeInvalidSpec},
		{"invalidOptimize", http.MethodPost, "/v1/optimize", `{"name": "x"}`, http.StatusBadRequest, CodeInvalidSpec},
		{"perfNoSection", http.MethodPost, "/v1/performability",
			`{"name": "x", "system": {"preset": "small"}, "traffic": {"flits": 16, "flitBytes": [128], "lambda": {"max": 1e-4, "points": 3}}}`,
			http.StatusBadRequest, CodeInvalidSpec},
		{"fleetNoSection", http.MethodPost, "/v1/fleetsim",
			`{"name": "x", "system": {"preset": "small"}, "traffic": {"flits": 16, "flitBytes": [128], "lambda": {"max": 1e-4, "points": 3}}}`,
			http.StatusBadRequest, CodeInvalidSpec},
		{"batchEnvelope", http.MethodPost, "/v1/batch", `{"items": [`, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body)))
			if rec.Code != tc.wantCode {
				t.Fatalf("status %d, want %d (%s)", rec.Code, tc.wantCode, rec.Body.String())
			}
			var ae APIError
			if err := json.Unmarshal(rec.Body.Bytes(), &ae); err != nil {
				t.Fatalf("body %q is not an APIError: %v", rec.Body.String(), err)
			}
			if ae.Code != tc.wantErr {
				t.Errorf("code %q, want %q (message %q)", ae.Code, tc.wantErr, ae.Message)
			}
			if ae.Message == "" {
				t.Error("empty message")
			}
			if ae.RequestID == "" {
				t.Error("empty request ID")
			}
			if hdr := rec.Header().Get(RequestIDHeader); hdr != ae.RequestID {
				t.Errorf("header request ID %q != body %q", hdr, ae.RequestID)
			}
		})
	}
}

// TestRequestIDPropagation: a caller-supplied X-Request-Id is echoed on
// the response and carried into the error envelope; absent one, the
// middleware mints a 16-hex-digit ID.
func TestRequestIDPropagation(t *testing.T) {
	srv := New(Options{})
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(`{`))
	req.Header.Set(RequestIDHeader, "trace-abc-123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "trace-abc-123" {
		t.Errorf("echoed ID %q", got)
	}
	var ae APIError
	if err := json.Unmarshal(rec.Body.Bytes(), &ae); err != nil || ae.RequestID != "trace-abc-123" {
		t.Errorf("error envelope ID %q (err %v)", ae.RequestID, err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if got := rec.Header().Get(RequestIDHeader); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("minted ID %q is not 16 hex digits", got)
	}
}

// TestTrustedRouterKey: with TrustRouterKeys on, a valid X-Ccnet-Key
// becomes the cache key verbatim (the replica skips canonicalization);
// with it off — the default — the header is ignored.
func TestTrustedRouterKey(t *testing.T) {
	forced := canon.MustHash("router", "some-canonical-body")

	trusted := New(Options{TrustRouterKeys: true})
	req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(smallEvaluate))
	req.Header.Set(RoutedKeyHeader, string(forced))
	rec := httptest.NewRecorder()
	trusted.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Key != string(forced) {
		t.Fatalf("key %q, want the forwarded %q", env.Key, forced)
	}
	// The same forwarded key answers from the cache.
	req = httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(smallEvaluate))
	req.Header.Set(RoutedKeyHeader, string(forced))
	rec = httptest.NewRecorder()
	trusted.Handler().ServeHTTP(rec, req)
	if rec.Header().Get("X-Cache") != classHit {
		t.Fatalf("forwarded key did not hit the cache: X-Cache=%q", rec.Header().Get("X-Cache"))
	}

	// An invalid key (wrong scheme/length) is ignored even when trusted.
	req = httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(smallEvaluate))
	req.Header.Set(RoutedKeyHeader, "v1:short")
	rec = httptest.NewRecorder()
	trusted.Handler().ServeHTTP(rec, req)
	var env2 Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env2); err != nil {
		t.Fatal(err)
	}
	if env2.Key == "v1:short" {
		t.Fatal("malformed forwarded key was trusted")
	}

	// Untrusted replica: header ignored, native key derived.
	plain := New(Options{})
	req = httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(smallEvaluate))
	req.Header.Set(RoutedKeyHeader, string(forced))
	rec = httptest.NewRecorder()
	plain.Handler().ServeHTTP(rec, req)
	var env3 Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env3); err != nil {
		t.Fatal(err)
	}
	if env3.Key == string(forced) {
		t.Fatal("untrusted replica honored the router key header")
	}
}

// frameProbe is the minimal decode every NDJSON consumer performs:
// dispatch on "kind" alone.
type frameProbe struct {
	Kind  string          `json:"kind"`
	Error json.RawMessage `json:"error"`
}

// TestUnifiedFrameSchema is the table test over all four streaming
// endpoints: every line carries kind ∈ {progress, result, error}, the
// terminal line is a result (or error) frame, and progress never
// follows the terminal frame.
func TestUnifiedFrameSchema(t *testing.T) {
	srv := New(Options{Workers: 2})
	h := srv.Handler()
	cases := []struct {
		name, path, body string
		wantTerminal     string
	}{
		{"batch", "/v1/batch",
			`{"items": [{"id": "a", "kind": "evaluate", "spec": {"system": {"preset": "small"}, "message": {"flits": 16, "flitBytes": 128}, "lambda": 1e-4}}]}`,
			FrameResult},
		{"optimize", "/v1/optimize",
			`{"name": "frame-opt", "space": {"ports": [4], "groups": [{"counts": [4], "treeLevels": [1]}]}, "message": {"flits": 16, "flitBytes": 128}}`,
			FrameResult},
		{"performability", "/v1/performability", perfabSpec, FrameResult},
		{"fleetsim", "/v1/fleetsim", fleetSpec, FrameResult},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, tc.path, strings.NewReader(tc.body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			var kinds []string
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" {
					continue
				}
				var p frameProbe
				if err := json.Unmarshal([]byte(line), &p); err != nil {
					t.Fatalf("line %q: %v", line, err)
				}
				switch p.Kind {
				case FrameProgress, FrameResult, FrameError:
				default:
					t.Fatalf("line %q has kind %q", line, p.Kind)
				}
				kinds = append(kinds, p.Kind)
			}
			if len(kinds) == 0 {
				t.Fatal("no frames")
			}
			if last := kinds[len(kinds)-1]; last != tc.wantTerminal {
				t.Fatalf("terminal frame %q, want %q (sequence %v)", last, tc.wantTerminal, kinds)
			}
			for _, k := range kinds[:len(kinds)-1] {
				if k != FrameProgress {
					t.Fatalf("non-terminal frame %q in %v", k, kinds)
				}
			}
		})
	}
}

// TestStreamErrorFrameIsAPIError: a computation that dies after the
// stream commits reports an in-band "error" frame whose payload is the
// same APIError envelope, request ID included. A pre-cancelled context
// kills the search deterministically after the stream has opened.
func TestStreamErrorFrameIsAPIError(t *testing.T) {
	srv := New(Options{Workers: 1})
	spec, err := optimize.Parse(strings.NewReader(
		`{"name": "frame-err", "space": {"ports": [4], "groups": [{"counts": [4], "treeLevels": [1]}]}, "message": {"flits": 16, "flitBytes": 128}}`), "test")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf strings.Builder
	if _, err := srv.runOptimize(WithRequestID(ctx, "stream-err-1"), spec, &buf, ""); err == nil {
		t.Fatal("cancelled search reported no error")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	var el ErrorLine
	if err := json.Unmarshal([]byte(last), &el); err != nil {
		t.Fatalf("terminal line %q: %v", last, err)
	}
	if el.Kind != FrameError || el.Error.Code == "" || el.Error.Message == "" {
		t.Fatalf("error frame %+v", el)
	}
	if el.Error.RequestID != "stream-err-1" {
		t.Errorf("error frame request ID %q", el.Error.RequestID)
	}
}
