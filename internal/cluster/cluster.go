// Package cluster describes heterogeneous cluster-of-clusters systems: the
// number and shape of clusters, and the network class of every ICN1(i),
// ECN1(i) and the global ICN2. It provides the two system organizations of
// Table 1 as presets and derives the quantities the analytical model and
// the simulator share (cluster sizes N_i, the outgoing-traffic probability
// U^(i) of Eq 2, and the ICN2 tree height n_c).
package cluster

import (
	"fmt"

	"github.com/ccnet/ccnet/internal/netchar"
)

// Config describes one cluster.
type Config struct {
	// TreeLevels is n_i: the cluster's networks are m-port n_i-trees, so
	// the cluster has N_i = 2(m/2)^{n_i} nodes (assumption 3).
	TreeLevels int
	// ICN1 is the intra-cluster network class.
	ICN1 netchar.Characteristics
	// ECN1 is the inter-cluster access network class.
	ECN1 netchar.Characteristics
}

// System is a complete cluster-of-clusters description.
type System struct {
	// Name labels the organization (e.g. "N=1120").
	Name string
	// Ports is m, the switch arity shared by every network in the system.
	Ports int
	// Clusters lists the C clusters.
	Clusters []Config
	// ICN2 is the global inter-cluster network class.
	ICN2 netchar.Characteristics
}

// K returns m/2.
func (s *System) K() int { return s.Ports / 2 }

// NumClusters returns C.
func (s *System) NumClusters() int { return len(s.Clusters) }

// ClusterNodes returns N_i for cluster i.
func (s *System) ClusterNodes(i int) int {
	n := 2
	for l := 0; l < s.Clusters[i].TreeLevels; l++ {
		n *= s.K()
	}
	return n
}

// TotalNodes returns N = Σ N_i.
func (s *System) TotalNodes() int {
	total := 0
	for i := range s.Clusters {
		total += s.ClusterNodes(i)
	}
	return total
}

// OutProbability returns U^(i) (Eq 2), the probability that a uniformly
// addressed message from cluster i leaves the cluster:
//
//	U^(i) = 1 − (N_i − 1)/(N − 1)
func (s *System) OutProbability(i int) float64 {
	n := s.TotalNodes()
	if n <= 1 {
		return 0
	}
	return 1 - float64(s.ClusterNodes(i)-1)/float64(n-1)
}

// ICN2Levels returns n_c, the height of the ICN2 tree, defined by
// C = 2(m/2)^{n_c}. It is an error if C is not of that form.
func (s *System) ICN2Levels() (int, error) {
	c := s.NumClusters()
	k := s.K()
	if c%2 != 0 {
		return 0, fmt.Errorf("cluster: C=%d is not 2(m/2)^n for any n", c)
	}
	half := c / 2
	n := 0
	for half > 1 {
		if k <= 1 || half%k != 0 {
			return 0, fmt.Errorf("cluster: C=%d is not 2(m/2)^n with m=%d", c, s.Ports)
		}
		half /= k
		n++
	}
	if n < 1 {
		return 0, fmt.Errorf("cluster: C=%d yields n_c=0; need at least 2(m/2) clusters", c)
	}
	return n, nil
}

// Validate checks the full system description.
func (s *System) Validate() error {
	if s.Ports < 2 || s.Ports%2 != 0 {
		return fmt.Errorf("cluster: ports m=%d must be an even integer >= 2", s.Ports)
	}
	if len(s.Clusters) < 2 {
		return fmt.Errorf("cluster: need at least 2 clusters, got %d", len(s.Clusters))
	}
	if err := s.ICN2.Validate(); err != nil {
		return fmt.Errorf("cluster: ICN2: %w", err)
	}
	if _, err := s.ICN2Levels(); err != nil {
		return err
	}
	for i, c := range s.Clusters {
		if c.TreeLevels < 1 || c.TreeLevels > 32 {
			return fmt.Errorf("cluster %d: tree levels n_i=%d out of range", i, c.TreeLevels)
		}
		if err := c.ICN1.Validate(); err != nil {
			return fmt.Errorf("cluster %d: ICN1: %w", i, err)
		}
		if err := c.ECN1.Validate(); err != nil {
			return fmt.Errorf("cluster %d: ECN1: %w", i, err)
		}
	}
	return nil
}

// ScaleICN2Bandwidth returns a copy of the system with the ICN2 bandwidth
// multiplied by factor (the Fig 7 design-space knob).
func (s *System) ScaleICN2Bandwidth(factor float64) *System {
	cp := *s
	cp.Clusters = append([]Config{}, s.Clusters...)
	cp.ICN2 = s.ICN2.ScaleBandwidth(factor)
	cp.Name = fmt.Sprintf("%s (ICN2 BW ×%g)", s.Name, factor)
	return &cp
}

// uniform builds a system whose clusters all use Net.1 for ICN1 and Net.2
// for ECN1, with ICN2 on Net.1 — the network assignment of the paper's
// validation section.
func uniform(name string, ports int, levels []int) *System {
	s := &System{Name: name, Ports: ports, ICN2: netchar.Net1}
	for _, n := range levels {
		s.Clusters = append(s.Clusters, Config{
			TreeLevels: n,
			ICN1:       netchar.Net1,
			ECN1:       netchar.Net2,
		})
	}
	return s
}

// System1120 returns the first organization of Table 1: N=1120, C=32,
// m=8, with n_i = 1 for clusters 0–11, n_i = 2 for 12–27, n_i = 3 for
// 28–31.
func System1120() *System {
	levels := make([]int, 32)
	for i := 0; i <= 11; i++ {
		levels[i] = 1
	}
	for i := 12; i <= 27; i++ {
		levels[i] = 2
	}
	for i := 28; i <= 31; i++ {
		levels[i] = 3
	}
	return uniform("N=1120", 8, levels)
}

// System544 returns the second organization of Table 1: N=544, C=16, m=4,
// with n_i = 3 for clusters 0–7, n_i = 4 for 8–10, n_i = 5 for 11–15.
func System544() *System {
	levels := make([]int, 16)
	for i := 0; i <= 7; i++ {
		levels[i] = 3
	}
	for i := 8; i <= 10; i++ {
		levels[i] = 4
	}
	for i := 11; i <= 15; i++ {
		levels[i] = 5
	}
	return uniform("N=544", 4, levels)
}

// SmallTestSystem returns a 4-cluster miniature (m=4, mixed n_i∈{1,2},
// N=24) used by fast tests. It exercises the same heterogeneity mechanics
// as Table 1 at a size where simulation takes milliseconds. Note that the
// model's approximations (Eq 6 reuse for gateway crossings, per-pair rate
// averaging) are tuned for large systems; expect coarser accuracy here.
func SmallTestSystem() *System {
	return uniform("N=24 (test)", 4, []int{1, 1, 2, 2})
}
