package cluster

import (
	"math"
	"testing"

	"github.com/ccnet/ccnet/internal/netchar"
)

func TestSystem1120MatchesTable1(t *testing.T) {
	s := System1120()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumClusters() != 32 || s.Ports != 8 {
		t.Fatalf("C=%d m=%d, want 32/8", s.NumClusters(), s.Ports)
	}
	if s.TotalNodes() != 1120 {
		t.Fatalf("N = %d, want 1120", s.TotalNodes())
	}
	// Cluster sizes per band.
	for i, want := range map[int]int{0: 8, 11: 8, 12: 32, 27: 32, 28: 128, 31: 128} {
		if got := s.ClusterNodes(i); got != want {
			t.Errorf("N_%d = %d, want %d", i, got, want)
		}
	}
	nc, err := s.ICN2Levels()
	if err != nil {
		t.Fatal(err)
	}
	if nc != 2 { // 32 = 2·4²
		t.Fatalf("n_c = %d, want 2", nc)
	}
}

func TestSystem544MatchesTable1(t *testing.T) {
	s := System544()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumClusters() != 16 || s.Ports != 4 {
		t.Fatalf("C=%d m=%d, want 16/4", s.NumClusters(), s.Ports)
	}
	if s.TotalNodes() != 544 {
		t.Fatalf("N = %d, want 544", s.TotalNodes())
	}
	for i, want := range map[int]int{0: 16, 7: 16, 8: 32, 10: 32, 11: 64, 15: 64} {
		if got := s.ClusterNodes(i); got != want {
			t.Errorf("N_%d = %d, want %d", i, got, want)
		}
	}
	nc, err := s.ICN2Levels()
	if err != nil {
		t.Fatal(err)
	}
	if nc != 3 { // 16 = 2·2³
		t.Fatalf("n_c = %d, want 3", nc)
	}
}

func TestNetworkAssignmentMatchesValidationSection(t *testing.T) {
	// "The ICN1 and ICN2 networks used the Net.1 while the ECN1 networks
	// used the Net.2 configuration."
	for _, s := range []*System{System1120(), System544()} {
		if s.ICN2 != netchar.Net1 {
			t.Errorf("%s: ICN2 = %v, want Net.1", s.Name, s.ICN2)
		}
		for i, c := range s.Clusters {
			if c.ICN1 != netchar.Net1 {
				t.Errorf("%s cluster %d: ICN1 = %v, want Net.1", s.Name, i, c.ICN1)
			}
			if c.ECN1 != netchar.Net2 {
				t.Errorf("%s cluster %d: ECN1 = %v, want Net.2", s.Name, i, c.ECN1)
			}
		}
	}
}

func TestOutProbability(t *testing.T) {
	s := System1120()
	// Eq 2: U = 1 − (N_i−1)/(N−1).
	cases := []struct {
		i    int
		want float64
	}{
		{0, 1 - 7.0/1119},    // N_0 = 8
		{12, 1 - 31.0/1119},  // N_12 = 32
		{31, 1 - 127.0/1119}, // N_31 = 128
	}
	for _, c := range cases {
		if got := s.OutProbability(c.i); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("U^(%d) = %v, want %v", c.i, got, c.want)
		}
	}
	// Bigger clusters keep more traffic internal.
	if !(s.OutProbability(31) < s.OutProbability(0)) {
		t.Error("larger cluster should have smaller outgoing probability")
	}
}

func TestOutProbabilityBounds(t *testing.T) {
	for _, s := range []*System{System1120(), System544(), SmallTestSystem()} {
		for i := range s.Clusters {
			u := s.OutProbability(i)
			if u <= 0 || u >= 1 {
				t.Errorf("%s: U^(%d) = %v out of (0,1)", s.Name, i, u)
			}
		}
	}
}

func TestICN2LevelsRejectsBadCounts(t *testing.T) {
	s := System1120()
	s.Clusters = s.Clusters[:31] // 31 clusters: not 2·4^n
	if _, err := s.ICN2Levels(); err == nil {
		t.Fatal("ICN2Levels accepted C=31 with m=8")
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted C=31 with m=8")
	}
	s.Clusters = s.Clusters[:12] // 12 = 2·6: not a power of 4
	if _, err := s.ICN2Levels(); err == nil {
		t.Fatal("ICN2Levels accepted C=12 with m=8")
	}
}

func TestValidateRejectsBadSystems(t *testing.T) {
	good := SmallTestSystem()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := SmallTestSystem()
	bad.Ports = 3
	if err := bad.Validate(); err == nil {
		t.Error("accepted odd port count")
	}

	bad = SmallTestSystem()
	bad.Clusters = bad.Clusters[:1]
	if err := bad.Validate(); err == nil {
		t.Error("accepted single-cluster system")
	}

	bad = SmallTestSystem()
	bad.Clusters[0].TreeLevels = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero tree levels")
	}

	bad = SmallTestSystem()
	bad.ICN2.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero ICN2 bandwidth")
	}

	bad = SmallTestSystem()
	bad.Clusters[1].ECN1.Bandwidth = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative ECN1 bandwidth")
	}
}

func TestScaleICN2Bandwidth(t *testing.T) {
	s := System544()
	scaled := s.ScaleICN2Bandwidth(1.2)
	if math.Abs(scaled.ICN2.Bandwidth-600) > 1e-9 {
		t.Fatalf("scaled ICN2 bandwidth = %v, want 600", scaled.ICN2.Bandwidth)
	}
	if s.ICN2.Bandwidth != 500 {
		t.Fatal("ScaleICN2Bandwidth mutated the original")
	}
	if scaled.TotalNodes() != s.TotalNodes() {
		t.Fatal("scaling changed the topology")
	}
	// Deep copy of clusters: mutating the copy must not touch the source.
	scaled.Clusters[0].TreeLevels = 9
	if s.Clusters[0].TreeLevels == 9 {
		t.Fatal("ScaleICN2Bandwidth shares cluster backing array")
	}
}

func TestSmallTestSystem(t *testing.T) {
	s := SmallTestSystem()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalNodes() != 2*2+2*2+2*4+2*4 {
		t.Fatalf("N = %d, want 20", s.TotalNodes())
	}
	nc, err := s.ICN2Levels()
	if err != nil || nc != 1 { // 4 = 2·2¹
		t.Fatalf("n_c = %d (%v), want 1", nc, err)
	}
}

func TestICN2LevelsProperty(t *testing.T) {
	// For every valid (k, n_c) the round trip C = 2k^{n_c} → ICN2Levels
	// must recover n_c exactly. k=1 is excluded: C=2 for every height,
	// so the inverse is undefined (and rejected by ICN2Levels).
	for k := 2; k <= 6; k++ {
		c := 2
		for nc := 1; nc <= 6; nc++ {
			c *= k
			if c > 4096 {
				break
			}
			sys := &System{Name: "t", Ports: 2 * k, ICN2: netchar.Net1}
			for i := 0; i < c; i++ {
				sys.Clusters = append(sys.Clusters, Config{TreeLevels: 1, ICN1: netchar.Net1, ECN1: netchar.Net2})
			}
			got, err := sys.ICN2Levels()
			if err != nil {
				t.Fatalf("k=%d nc=%d C=%d: %v", k, nc, c, err)
			}
			if got != nc {
				t.Fatalf("k=%d C=%d: ICN2Levels=%d, want %d", k, c, got, nc)
			}
		}
	}
}
