// Package obs wires the observability surface the server binaries
// share: the -log-level/-trace-*/-pprof-addr flag group, the
// structured JSON logger, the request tracer with its optional NDJSON
// file sink, and the gated net/http/pprof listener. ccserved and
// ccrouter register the same flags and build the same stack, so the
// two tiers are operated identically.
package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"github.com/ccnet/ccnet/internal/reqtrace"
)

// Flags holds the registered observability flag values; read them
// after FlagSet.Parse.
type Flags struct {
	LogLevel  *string
	TraceRate *float64
	TraceHead *int
	TraceSlow *time.Duration
	TraceBuf  *int
	TraceSeed *uint64
	TraceOut  *string
	PprofAddr *string
}

// Register adds the shared observability flags to fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.LogLevel = fs.String("log-level", "info",
		`log level: debug|info|warn|error, with optional per-component overrides like "warn,service=debug"`)
	f.TraceRate = fs.Float64("trace-rate", 1,
		"fraction of requests traced by id hash (0..1; negative disables tracing entirely)")
	f.TraceHead = fs.Int("trace-head", reqtrace.DefHeadN,
		"always trace the first N requests regardless of -trace-rate (negative disables the head window)")
	f.TraceSlow = fs.Duration("trace-slow", reqtrace.DefSlowThreshold,
		"slow-request threshold: slower traces are retained in the slow ring and logged (negative disables)")
	f.TraceBuf = fs.Int("trace-buf", reqtrace.DefBufferTraces,
		"completed traces buffered for GET /v1/traces")
	f.TraceSeed = fs.Uint64("trace-seed", 0,
		"seed for deterministic trace ids and sampling decisions (0 = random ids)")
	f.TraceOut = fs.String("trace-out", "",
		"append every exported trace as one NDJSON line to this file")
	f.PprofAddr = fs.String("pprof-addr", "",
		"serve net/http/pprof profiling endpoints on this address (off when empty)")
	return f
}

// Stack is the built observability stack of one binary.
type Stack struct {
	// Log is the component's structured JSON logger.
	Log *slog.Logger
	// Tracer is the request tracer; nil when -trace-rate is negative.
	Tracer *reqtrace.Tracer

	sink    *os.File
	pprofLn net.Listener
}

// Build assembles the stack for one component ("service", "router"):
// the logger writes JSON lines to logW at the component's -log-level,
// and the tracer (unless disabled) samples at -trace-rate with the
// -trace-out sink attached.
func (f *Flags) Build(component string, logW io.Writer) (*Stack, error) {
	levels, err := reqtrace.ParseLevels(*f.LogLevel)
	if err != nil {
		return nil, err
	}
	st := &Stack{Log: reqtrace.NewLogger(logW, component, levels)}
	if *f.TraceRate < 0 {
		return st, nil // tracing off: a nil Tracer makes every hook a no-op
	}
	opt := reqtrace.Options{
		Component:     component,
		Rate:          *f.TraceRate,
		HeadN:         *f.TraceHead,
		SlowThreshold: *f.TraceSlow,
		BufferTraces:  *f.TraceBuf,
		Seed:          *f.TraceSeed,
		Log:           st.Log,
	}
	if opt.Rate == 0 {
		// The flag's 0 means "no hash sampling, head window only" —
		// distinct from the Options zero value (= sample everything).
		opt.Rate = math.SmallestNonzeroFloat64
	}
	if *f.TraceOut != "" {
		file, err := os.OpenFile(*f.TraceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("obs: open -trace-out: %w", err)
		}
		st.sink = file
		opt.Sink = file
	}
	st.Tracer = reqtrace.New(opt)
	return st, nil
}

// ServePprof starts the gated profiling listener when addr is
// non-empty: an explicit mux carrying only the net/http/pprof
// handlers, never mounted on the serving port.
func (st *Stack) ServePprof(addr string) error {
	if addr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: pprof listen: %w", err)
	}
	st.pprofLn = ln
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		_ = srv.Serve(ln)
	}()
	return nil
}

// PprofAddr reports the bound profiling address ("" when off); tests
// use it to reach a :0 listener.
func (st *Stack) PprofAddr() string {
	if st.pprofLn == nil {
		return ""
	}
	return st.pprofLn.Addr().String()
}

// Close releases the trace sink and the pprof listener.
func (st *Stack) Close() {
	if st.sink != nil {
		st.sink.Close()
	}
	if st.pprofLn != nil {
		st.pprofLn.Close()
	}
}
