package obs

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// build parses args through a fresh flag set and builds the stack.
func build(t *testing.T, component string, logW io.Writer, args ...string) (*Stack, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f.Build(component, logW)
}

func TestBuildDefaults(t *testing.T) {
	var logs strings.Builder
	st, err := build(t, "service", &logs)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Log == nil {
		t.Fatal("Build returned a nil logger")
	}
	if st.Tracer == nil {
		t.Fatal("default flags should enable the tracer")
	}
	st.Log.Info("hello", "k", "v")
	line := logs.String()
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line %q is not JSON: %v", line, err)
	}
	if rec["component"] != "service" {
		t.Errorf("log component = %v, want service", rec["component"])
	}
}

func TestBuildTraceRateNegativeDisablesTracer(t *testing.T) {
	st, err := build(t, "router", io.Discard, "-trace-rate=-1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Tracer != nil {
		t.Fatal("-trace-rate=-1 should leave the tracer nil")
	}
}

// TestBuildTraceRateZeroMeansHeadOnly pins the flag semantics: 0 is
// "head window only", not the library's zero value ("sample all").
func TestBuildTraceRateZeroMeansHeadOnly(t *testing.T) {
	st, err := build(t, "router", io.Discard, "-trace-rate=0", "-trace-head=2", "-trace-seed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		_, tr := st.Tracer.StartRequest(t.Context(), "GET /x", "", fmt.Sprintf("req-%d", i))
		tr.End(200, nil)
	}
	if got := st.Tracer.Stats().Sampled; got != 2 {
		t.Fatalf("rate 0 head 2 sampled %d of 10 requests, want exactly the head window", got)
	}
}

func TestBuildBadLogLevel(t *testing.T) {
	if _, err := build(t, "service", io.Discard, "-log-level=loud"); err == nil {
		t.Fatal("a bogus -log-level must fail Build")
	}
}

func TestBuildTraceOutSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.ndjson")
	st, err := build(t, "service", io.Discard, "-trace-out="+path, "-trace-seed=1")
	if err != nil {
		t.Fatal(err)
	}
	_, tr := st.Tracer.StartRequest(t.Context(), "GET /x", "", "req-1")
	tr.End(200, nil)
	st.Close()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("-trace-out file has no trace lines")
	}
	var rec map[string]any
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatalf("sink line %q is not JSON: %v", sc.Text(), err)
	}
	if rec["requestId"] != "req-1" {
		t.Errorf("sink requestId = %v, want req-1", rec["requestId"])
	}
}

func TestBuildTraceOutUnwritable(t *testing.T) {
	if _, err := build(t, "service", io.Discard,
		"-trace-out="+filepath.Join(t.TempDir(), "no", "such", "dir", "t.ndjson")); err == nil {
		t.Fatal("an unopenable -trace-out must fail Build")
	}
}

func TestServePprof(t *testing.T) {
	st, err := build(t, "service", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.PprofAddr() != "" {
		t.Fatal("PprofAddr should be empty before ServePprof")
	}
	if err := st.ServePprof(""); err != nil {
		t.Fatalf("empty addr should be a no-op, got %v", err)
	}
	if err := st.ServePprof("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := st.PprofAddr()
	if addr == "" {
		t.Fatal("PprofAddr empty after ServePprof")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof index = %d %q", resp.StatusCode, body)
	}

	// A second listener on a bad address reports the bind error.
	if err := st.ServePprof("256.0.0.1:0"); err == nil {
		t.Fatal("an unbindable pprof addr must error")
	}
}
