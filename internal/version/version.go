// Package version holds the single version string shared by every ccnet
// command, so `<tool> -version` output stays consistent across the CLI
// surface and the HTTP service's health endpoint.
package version

import (
	"fmt"
	"runtime"
)

// Version identifies the build. It is overridable at link time:
//
//	go build -ldflags "-X github.com/ccnet/ccnet/internal/version.Version=v1.2.3"
var Version = "0.2.0-dev"

// String renders the one-line `-version` output for a named tool,
// e.g. "ccmodel version 0.2.0-dev go1.24.0 linux/amd64".
func String(tool string) string {
	return fmt.Sprintf("%s version %s %s %s/%s",
		tool, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
