package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total", "Jobs."); again != c {
		t.Fatal("re-registration did not return the same series")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Depth.")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestVecChildrenAreDistinct(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "Requests.", "endpoint", "status")
	v.With("evaluate", "200").Add(3)
	v.With("sweep", "200").Inc()
	if got := v.With("evaluate", "200").Value(); got != 3 {
		t.Fatalf("evaluate/200 = %d, want 3", got)
	}
	if got := v.With("sweep", "200").Value(); got != 1 {
		t.Fatalf("sweep/200 = %d, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.005+0.01+0.02+0.5+3; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Bounds are inclusive upper bounds: 0.01 lands in the first bucket.
	if got := h.Cumulative(); got[0] != 2 || got[1] != 3 || got[2] != 4 || got[3] != 5 {
		t.Fatalf("cumulative = %v, want [2 3 4 5]", got)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1})
	h.Observe(strToNaN())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("NaN observation was recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func strToNaN() float64 {
	var z float64
	return z / z
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.Counter("0bad", "") }},
		{"bad label name", func(r *Registry) { r.CounterVec("ok_total", "", "0bad") }},
		{"kind clash", func(r *Registry) { r.Counter("x_total", ""); r.Gauge("x_total", "") }},
		{"label clash", func(r *Registry) { r.CounterVec("y_total", "", "a"); r.CounterVec("y_total", "", "b") }},
		{"arity", func(r *Registry) { r.CounterVec("z_total", "", "a").With("1", "2") }},
		{"empty buckets", func(r *Registry) { r.Histogram("h", "", nil) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h", "", []float64{2, 1}) }},
		{"odd pairs", func(r *Registry) { r.GaugeFunc("g", "", func() float64 { return 0 }, "only-name") }},
		{"dup func", func(r *Registry) {
			r.GaugeFunc("g", "", func() float64 { return 0 })
			r.GaugeFunc("g", "", func() float64 { return 0 })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// TestExpositionGolden pins the full exposition text: every metric
// type, labeled and unlabeled series, func series, escaping, and the
// deterministic family/series ordering. Any formatting change must be
// deliberate.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("app_requests_total", "Requests served.", "endpoint", "status")
	reqs.With("sweep", "200").Add(2)
	reqs.With("evaluate", "200").Add(7)
	reqs.With("evaluate", "400").Inc()
	r.Gauge("app_inflight", "In-flight requests.").Set(3)
	r.GaugeFunc("app_pool_size", "Worker pool size.", func() float64 { return 8 })
	r.CounterFunc("app_cache_ops_total", "Cache operations.", func() float64 { return 11 }, "op", "hit")
	r.CounterFunc("app_cache_ops_total", "Cache operations.", func() float64 { return 4 }, "op", "miss")
	h := r.HistogramVec("app_latency_seconds", "Request latency.", []float64{0.01, 0.1}, "endpoint")
	h.With("evaluate").Observe(0.005)
	h.With("evaluate").Observe(0.05)
	h.With("evaluate").Observe(0.5)
	r.Counter("esc_total", `back\slash and
newline`).Inc()
	ql := r.GaugeVec("quoted", "Label escaping.", "path")
	ql.With(`a"b\c`).Set(1)

	const want = `# HELP app_cache_ops_total Cache operations.
# TYPE app_cache_ops_total counter
app_cache_ops_total{op="hit"} 11
app_cache_ops_total{op="miss"} 4
# HELP app_inflight In-flight requests.
# TYPE app_inflight gauge
app_inflight 3
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{endpoint="evaluate",le="0.01"} 1
app_latency_seconds_bucket{endpoint="evaluate",le="0.1"} 2
app_latency_seconds_bucket{endpoint="evaluate",le="+Inf"} 3
app_latency_seconds_sum{endpoint="evaluate"} 0.555
app_latency_seconds_count{endpoint="evaluate"} 3
# HELP app_pool_size Worker pool size.
# TYPE app_pool_size gauge
app_pool_size 8
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{endpoint="evaluate",status="200"} 7
app_requests_total{endpoint="evaluate",status="400"} 1
app_requests_total{endpoint="sweep",status="200"} 2
# HELP esc_total back\\slash and\nnewline
# TYPE esc_total counter
esc_total 1
# HELP quoted Label escaping.
# TYPE quoted gauge
quoted{path="a\"b\\c"} 1
`
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Byte-identical on a second scrape: ordering is deterministic, not
	// map-iteration luck.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "One.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestGoRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_memstats_sys_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, "# TYPE "+name) {
			t.Errorf("missing %s in:\n%s", name, out)
		}
	}
	// Goroutine count is at least this test's goroutine.
	if !strings.Contains(out, "go_goroutines ") {
		t.Error("no go_goroutines sample")
	}
}
