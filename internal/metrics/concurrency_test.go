package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentObservations hammers counters, gauges, vec children and
// histograms from many goroutines (run under -race in CI) and checks
// that nothing is lost: counters and histogram counts are exact, the
// histogram sum is exact (every observation lands through the CAS
// loop), and scraping concurrently with observation neither panics nor
// corrupts output.
func TestConcurrentObservations(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	vec := r.CounterVec("v_total", "", "worker")
	h := r.Histogram("h_seconds", "", DefLatencyBuckets)
	hv := r.HistogramVec("hv_seconds", "", []float64{0.001, 0.01, 0.1}, "worker")

	var wg, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	// A scraper races the writers the whole time; it has its own
	// WaitGroup because it only exits once the writers are done.
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
		}
	}()

	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4)
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				vec.With(label).Inc()
				h.Observe(0.001)
				hv.With(label).Observe(float64(i%100) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()

	total := uint64(goroutines * perG)
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != float64(total) {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	if got, want := h.Sum(), float64(total)*0.001; !floatNear(got, want, tol(want)) {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	var vecTotal uint64
	for w := 0; w < 4; w++ {
		vecTotal += vec.With(fmt.Sprintf("w%d", w)).Value()
	}
	if vecTotal != total {
		t.Errorf("vec total = %d, want %d", vecTotal, total)
	}
}

// tol returns a tiny relative tolerance: the sum accumulates in FP so
// ordering can shift the last bits.
func tol(want float64) float64 { return want * 1e-9 }

func floatNear(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
