// Package metrics is a zero-dependency instrumentation layer: counters,
// gauges and fixed-bucket histograms held in a Registry and exposed in
// the Prometheus text format (see expose.go). The observation hot path
// is mutex-free — counters and gauges are single atomics, a histogram
// observation is one atomic bucket increment plus one CAS float add,
// and labeled children resolve through a lock-free sync.Map read — so
// instrumenting a request path costs tens of nanoseconds and zero
// allocations (BenchmarkHistogramObserve gates this in CI).
//
// Exposition is deterministic: families sort by metric name and series
// within a family sort by their label values, so the full text output
// is golden-testable.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the metric family type as exposed in `# TYPE`.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefLatencyBuckets spans 100 µs to 10 s — the service's request
// latencies range from cache hits (tens of µs) to cold campaign runs
// (seconds). Values are upper bounds in seconds; +Inf is implicit.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families. The zero value is not usable;
// construct with NewRegistry. Registration takes a lock and panics on
// misuse (invalid or duplicate names, label mismatches) — registration
// happens at construction time, so these are programmer errors, not
// runtime conditions. Observation and exposition are safe for
// concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one exposed metric name: its metadata and all its series.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string  // label names, fixed at registration
	bounds []float64 // histogram upper bounds (without +Inf)

	// children maps the joined label-value key to a *Counter, *Gauge,
	// *Histogram or funcChild. Reads are lock-free; creation goes
	// through newMu so exactly one child wins per key.
	children sync.Map
	newMu    sync.Mutex
}

// funcChild is a callback series evaluated at scrape time.
type funcChild struct {
	values []string
	fn     func() float64
}

// register creates or fetches a family, checking that re-registrations
// agree on kind, help and label names.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %s: re-registered with different kind or labels", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels}
	if kind == KindHistogram {
		f.bounds = checkBounds(name, bounds)
	}
	r.fams[name] = f
	return f
}

func checkBounds(name string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: %s: histogram needs at least one bucket bound", name))
	}
	out := make([]float64, len(bounds))
	copy(out, bounds)
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: %s: invalid bucket bound %v", name, b))
		}
		if i > 0 && b <= out[i-1] {
			panic(fmt.Sprintf("metrics: %s: bucket bounds must increase strictly", name))
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childKey joins label values into the map key. \xff cannot appear in
// UTF-8 text, so the join is unambiguous.
func childKey(values []string) string { return strings.Join(values, "\xff") }

// child fetches or creates the series for values, checking arity.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s: got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := childKey(values)
	if c, ok := f.children.Load(key); ok {
		return c
	}
	f.newMu.Lock()
	defer f.newMu.Unlock()
	if c, ok := f.children.Load(key); ok {
		return c
	}
	c := make()
	f.children.Store(key, c)
	return c
}

// --- counter ---------------------------------------------------------------

// Counter is a monotonically increasing integer series.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With returns the series for the given label values, creating it on
// first use. The returned counter may be retained; repeated With calls
// with the same values return the same series.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// CounterFunc registers a callback counter series evaluated at scrape
// time: labelPairs alternate name, value ("endpoint", "evaluate").
// Several func series may share one family when their label names
// agree. Use it to expose counters a subsystem already maintains (the
// service's request atomics, the cache's hit/miss totals) without
// double-counting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.funcSeries(name, help, KindCounter, fn, labelPairs)
}

// --- gauge -----------------------------------------------------------------

// Gauge is a float series that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// With returns the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a callback gauge series evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.funcSeries(name, help, KindGauge, fn, labelPairs)
}

// funcSeries registers one callback series under a (possibly shared)
// family.
func (r *Registry) funcSeries(name, help string, kind Kind, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label pair list", name))
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.register(name, help, kind, names, nil)
	key := childKey(values)
	f.newMu.Lock()
	defer f.newMu.Unlock()
	if _, ok := f.children.Load(key); ok {
		panic(fmt.Sprintf("metrics: %s: duplicate func series %v", name, values))
	}
	f.children.Store(key, funcChild{values: values, fn: fn})
}

// --- histogram -------------------------------------------------------------

// Histogram counts observations into fixed buckets. Buckets are stored
// non-cumulatively (each observation touches exactly one bucket
// counter) and accumulated at scrape time, so Observe is one atomic
// increment plus one CAS sum update regardless of bucket count.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records v. NaN observations are dropped (a NaN would poison
// the sum forever).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Cumulative returns the cumulative bucket counts (one per bound, plus
// the trailing +Inf bucket, which equals Count). The snapshot is not
// atomic across buckets — concurrent observations may straddle it — but
// each bucket is itself consistent and the drift is bounded by the
// in-flight observations.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// Histogram registers (or fetches) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, buckets)
	return f.child(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// --- collection ------------------------------------------------------------

// series is one collected child, sorted by key for exposition.
type series struct {
	key    string
	values []string
	child  any
}

// snapshot returns the families sorted by name and each family's series
// sorted by label values.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// collect returns the family's series in deterministic order.
func (f *family) collect() []series {
	var out []series
	f.children.Range(func(k, v any) bool {
		key := k.(string)
		var values []string
		if fc, ok := v.(funcChild); ok {
			values = fc.values
		} else if key != "" {
			values = strings.Split(key, "\xff")
		}
		out = append(out, series{key: key, values: values, child: v})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
