package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
)

// WriteText writes every family in the Prometheus text exposition
// format (version 0.0.4): `# HELP` and `# TYPE` headers, then one line
// per series. Families are ordered by name and series by their label
// values, so identical registry states produce byte-identical output.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		children := f.collect()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range children {
			f.writeSeries(bw, s)
		}
	}
	return bw.Flush()
}

func (f *family) writeSeries(w *bufio.Writer, s series) {
	switch c := s.child.(type) {
	case *Counter:
		writeSample(w, f.name, "", f.labels, s.values, "", "", float64(c.Value()))
	case *Gauge:
		writeSample(w, f.name, "", f.labels, s.values, "", "", c.Value())
	case funcChild:
		writeSample(w, f.name, "", f.labels, s.values, "", "", c.fn())
	case *Histogram:
		cum := c.Cumulative()
		for i, b := range f.bounds {
			writeSample(w, f.name, "_bucket", f.labels, s.values, "le", formatFloat(b), float64(cum[i]))
		}
		writeSample(w, f.name, "_bucket", f.labels, s.values, "le", "+Inf", float64(cum[len(cum)-1]))
		writeSample(w, f.name, "_sum", f.labels, s.values, "", "", c.Sum())
		writeSample(w, f.name, "_count", f.labels, s.values, "", "", float64(cum[len(cum)-1]))
	}
}

// writeSample writes one series line, appending the optional extra
// label (the histogram `le`) after the family labels.
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, extraName, extraValue string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || extraName != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraName)
			w.WriteString(`="`)
			w.WriteString(extraValue)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders values the way Prometheus clients do: shortest
// round-trip representation, infinities spelled +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// ContentType is the exposition format the handler serves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WriteText(w)
	})
}

// RegisterGoRuntime adds the standard Go process gauges: goroutine
// count, heap allocation, total process memory and completed GC cycles.
// Memory stats are read once per scrape (ReadMemStats stops the world
// for microseconds — irrelevant at scrape frequency, never on a request
// path).
func RegisterGoRuntime(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapAlloc) })
	r.GaugeFunc("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.Sys) })
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles since process start.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.NumGC) })
}
