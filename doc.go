// Package ccnet reproduces "Analytical Network Modeling of Heterogeneous
// Large-Scale Cluster Systems" (Javadi, Abawajy, Akbari, Nahavandi; IEEE
// CLUSTER 2006): an analytical mean-latency model for cluster-of-clusters
// systems built from m-port n-tree fat-trees with wormhole flow control,
// together with the discrete-event simulator the model is validated
// against.
//
// The library lives under internal/: see internal/core for the analytical
// model, internal/sim for the simulator, internal/experiments for the
// table/figure regeneration harness, and internal/scenario for the
// declarative scenario engine — JSON what-if specs run by a parallel,
// deterministically seeded campaign runner. The cmd/ binaries (ccmodel,
// ccsim, ccexp, ccscen) and examples/ directories are the entry points
// (examples/scenarios holds ready-to-run scenario files, including
// reproductions of Figs 3–6); bench_test.go in this directory regenerates
// every table and figure of the paper under `go test -bench`.
package ccnet
