// Command ccscen runs declarative what-if scenarios: JSON files that
// describe a heterogeneous cluster-of-clusters system, a traffic section,
// the engines to run (analytical model, simulator, or both) and optional
// assertions. A campaign of several scenarios — or one scenario's load
// grid — fans out across a worker pool with deterministic per-job seeds,
// so results are bit-identical for any -workers value.
//
// Verbs:
//
//	ccscen run [flags] <file.json|dir> [...]   run scenarios, print results
//	ccscen validate <file.json|dir> [...]      check files without running
//	ccscen list [dir]                          summarize a scenario directory
//
// Examples:
//
//	ccscen run examples/scenarios/fig3.json
//	ccscen run -workers 8 -quick -outdir results/ examples/scenarios
//	ccscen validate examples/scenarios
//	ccscen list examples/scenarios
//
// The scenario file format is documented in README.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ccnet/ccnet/internal/experiments"
	"github.com/ccnet/ccnet/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "validate":
		validateCmd(os.Args[2:])
	case "list":
		listCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ccscen: unknown verb %q (valid: run, validate, list)\n", os.Args[1])
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  ccscen run [flags] <file.json|dir> [...]   run scenarios, print results
  ccscen validate <file.json|dir> [...]      check scenario files
  ccscen list [dir]                          summarize a scenario directory

run flags:
  -workers N   worker goroutines (default GOMAXPROCS); results are
               identical for every N
  -quick       reduced simulation message counts (fast, less precise)
  -outdir DIR  write one CSV per scenario into DIR
  -plot        render an ASCII chart of each scenario
`)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("ccscen run", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker goroutines (default GOMAXPROCS)")
	quick := fs.Bool("quick", false, "reduced simulation message counts (fast, less precise)")
	outdir := fs.String("outdir", "", "write one CSV per scenario into this directory")
	plot := fs.Bool("plot", false, "render an ASCII chart of each scenario")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ccscen run: at least one scenario file or directory required")
		os.Exit(2)
	}

	specs, err := scenario.LoadAll(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccscen:", err)
		os.Exit(1)
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ccscen:", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	r := &scenario.Runner{Workers: *workers, Quick: *quick}
	outcomes := r.Run(specs)

	failures := 0
	for _, o := range outcomes {
		if !o.Passed() {
			failures++
		}
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "ccscen: scenario %s failed: %v\n", o.Spec.Name, o.Err)
			continue
		}
		if err := experiments.Render(os.Stdout, o.Result); err != nil {
			fmt.Fprintln(os.Stderr, "ccscen:", err)
			os.Exit(1)
		}
		if *plot {
			if err := experiments.RenderChart(os.Stdout, o.Result, 72, 22); err != nil {
				fmt.Fprintln(os.Stderr, "ccscen:", err)
				os.Exit(1)
			}
		}
		for _, a := range o.Assertions {
			status := "PASS"
			if !a.Pass {
				status = "FAIL"
			}
			fmt.Printf("assert %-12s %s  %s\n", a.Spec.Type, status, a.Detail)
		}
		fmt.Printf("(%s completed in %v)\n\n", o.Spec.Name, o.Elapsed.Round(time.Millisecond))
		if *outdir != "" {
			path := filepath.Join(*outdir, o.Spec.Name+".csv")
			if err := writeCSV(path, o.Result); err != nil {
				fmt.Fprintln(os.Stderr, "ccscen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	fmt.Printf("campaign: %d scenario(s), %d failed, %v total\n",
		len(outcomes), failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

func writeCSV(path string, res *experiments.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, res); err != nil {
		return err
	}
	return f.Close()
}

func validateCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "ccscen validate: at least one scenario file or directory required")
		os.Exit(2)
	}
	specs, err := scenario.LoadAll(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccscen:", err)
		os.Exit(1)
	}
	// Validation also dry-builds each system: structural constraints
	// (C = 2(m/2)^n) only the cluster layer can check.
	bad := 0
	for _, s := range specs {
		if _, err := s.BuildSystem(); err != nil {
			fmt.Fprintf(os.Stderr, "ccscen: scenario %s: %v\n", s.Name, err)
			bad++
			continue
		}
		fmt.Printf("ok: %s\n", s.Name)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func listCmd(args []string) {
	dir := "examples/scenarios"
	if len(args) > 0 {
		dir = args[0]
	}
	sums, err := scenario.ListDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccscen:", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintf(os.Stderr, "ccscen: no *.json scenarios in %s\n", dir)
		os.Exit(1)
	}
	for _, s := range sums {
		if s.Err != nil {
			fmt.Printf("%-28s INVALID: %v\n", filepath.Base(s.Path), s.Err)
			continue
		}
		desc := s.Description
		if desc == "" {
			desc = s.Title
		}
		fmt.Printf("%-28s %-24s %s\n", filepath.Base(s.Path), s.Name, desc)
	}
}
