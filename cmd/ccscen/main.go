// Command ccscen runs declarative what-if scenarios: JSON files that
// describe a heterogeneous cluster-of-clusters system, a traffic section,
// the engines to run (analytical model, simulator, or both) and optional
// assertions. A campaign of several scenarios — or one scenario's load
// grid — fans out across a worker pool with deterministic per-job seeds,
// so results are bit-identical for any -workers value.
//
// Verbs:
//
//	ccscen run [flags] <file.json|dir> [...]   run scenarios, print results
//	ccscen batch [flags] <file.json|->         run a batch request, stream NDJSON
//	ccscen validate <file.json|dir> [...]      check files without running
//	ccscen list [dir]                          summarize a scenario directory
//
// Examples:
//
//	ccscen run examples/scenarios/fig3.json
//	ccscen run -workers 8 -quick -outdir results/ examples/scenarios
//	ccscen batch batchfile.json
//	ccscen batch - < batchfile.json
//	ccscen validate examples/scenarios
//	ccscen list examples/scenarios
//
// The scenario file format and the batch request/NDJSON stream formats
// are documented in README.md. `ccscen batch` evaluates the same
// documents POST /v1/batch accepts, through the same engine and result
// cache, without a server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/ccnet/ccnet/internal/experiments"
	"github.com/ccnet/ccnet/internal/scenario"
	"github.com/ccnet/ccnet/internal/service"
	"github.com/ccnet/ccnet/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches verbs; split from main so the table-driven CLI tests
// can exercise exit codes and usage output without exec'ing.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:], stdout, stderr)
	case "batch":
		return batchCmd(args[1:], stdout, stderr)
	case "validate":
		return validateCmd(args[1:], stdout, stderr)
	case "list":
		return listCmd(args[1:], stdout, stderr)
	case "-version", "--version":
		fmt.Fprintln(stdout, version.String("ccscen"))
		return 0
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "ccscen: unknown verb %q (valid: run, batch, validate, list)\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  ccscen run [flags] <file.json|dir> [...]   run scenarios, print results
  ccscen batch [flags] <file.json|->         run a batch request, stream NDJSON
  ccscen validate <file.json|dir> [...]      check scenario files
  ccscen list [dir]                          summarize a scenario directory
  ccscen -version                            print version and exit

run flags:
  -workers N   worker goroutines (default GOMAXPROCS); results are
               identical for every N
  -quick       reduced simulation message counts (fast, less precise)
  -outdir DIR  write one CSV per scenario into DIR
  -plot        render an ASCII chart of each scenario

batch flags:
  -workers N   worker goroutines sharding the batch (default GOMAXPROCS)
`)
}

// batchCmd runs a POST /v1/batch request document offline: items are
// sharded across the worker pool, results stream to stdout as NDJSON in
// item order (identical to the HTTP stream), and repeated specs within
// the batch hit the same canonical-spec result cache the server uses.
func batchCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccscen batch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker goroutines sharding the batch (default GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "ccscen batch: exactly one batch file (or - for stdin) required")
		return 2
	}

	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if arg := fs.Arg(0); arg != "-" {
		f, err := os.Open(arg)
		if err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
		defer f.Close()
		in, name = f, arg
	}
	req, err := service.ParseBatch(in)
	if err != nil {
		fmt.Fprintf(stderr, "ccscen: batch %s: %v\n", name, err)
		return 1
	}

	srv := service.New(service.Options{Workers: *workers})
	sum, err := srv.RunBatch(context.Background(), req.Items, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if sum.Failed > 0 {
		fmt.Fprintf(stderr, "ccscen: %d of %d batch item(s) failed\n", sum.Failed, sum.Items)
		return 1
	}
	return 0
}

func runCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccscen run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker goroutines (default GOMAXPROCS)")
	quick := fs.Bool("quick", false, "reduced simulation message counts (fast, less precise)")
	outdir := fs.String("outdir", "", "write one CSV per scenario into this directory")
	plot := fs.Bool("plot", false, "render an ASCII chart of each scenario")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "ccscen run: at least one scenario file or directory required")
		return 2
	}

	specs, err := scenario.LoadAll(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
	}

	start := time.Now()
	r := &scenario.Runner{Workers: *workers, Quick: *quick}
	outcomes := r.Run(specs)

	failures := 0
	for _, o := range outcomes {
		if !o.Passed() {
			failures++
		}
		if o.Err != nil {
			fmt.Fprintf(stderr, "ccscen: scenario %s failed: %v\n", o.Spec.Name, o.Err)
			continue
		}
		if err := experiments.Render(stdout, o.Result); err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
		if *plot {
			if err := experiments.RenderChart(stdout, o.Result, 72, 22); err != nil {
				fmt.Fprintln(stderr, "ccscen:", err)
				return 1
			}
		}
		for _, a := range o.Assertions {
			status := "PASS"
			if !a.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(stdout, "assert %-12s %s  %s\n", a.Spec.Type, status, a.Detail)
		}
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", o.Spec.Name, o.Elapsed.Round(time.Millisecond))
		if *outdir != "" {
			path := filepath.Join(*outdir, o.Spec.Name+".csv")
			if err := writeCSV(path, o.Result); err != nil {
				fmt.Fprintln(stderr, "ccscen:", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", path)
		}
	}
	fmt.Fprintf(stdout, "campaign: %d scenario(s), %d failed, %v total\n",
		len(outcomes), failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return 1
	}
	return 0
}

func writeCSV(path string, res *experiments.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, res); err != nil {
		return err
	}
	return f.Close()
}

func validateCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "ccscen validate: at least one scenario file or directory required")
		return 2
	}
	specs, err := scenario.LoadAll(args)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	// Validation also dry-builds each system: structural constraints
	// (C = 2(m/2)^n) only the cluster layer can check.
	bad := 0
	for _, s := range specs {
		if _, err := s.BuildSystem(); err != nil {
			fmt.Fprintf(stderr, "ccscen: scenario %s: %v\n", s.Name, err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "ok: %s\n", s.Name)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func listCmd(args []string, stdout, stderr io.Writer) int {
	dir := "examples/scenarios"
	if len(args) > 0 {
		dir = args[0]
	}
	sums, err := scenario.ListDir(dir)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if len(sums) == 0 {
		fmt.Fprintf(stderr, "ccscen: no *.json scenarios in %s\n", dir)
		return 1
	}
	for _, s := range sums {
		if s.Err != nil {
			fmt.Fprintf(stdout, "%-28s INVALID: %v\n", filepath.Base(s.Path), s.Err)
			continue
		}
		desc := s.Description
		if desc == "" {
			desc = s.Title
		}
		fmt.Fprintf(stdout, "%-28s %-24s %s\n", filepath.Base(s.Path), s.Name, desc)
	}
	return 0
}
