// Command ccscen runs declarative what-if scenarios: JSON files that
// describe a heterogeneous cluster-of-clusters system, a traffic section,
// the engines to run (analytical model, simulator, or both) and optional
// assertions. A campaign of several scenarios — or one scenario's load
// grid — fans out across a worker pool with deterministic per-job seeds,
// so results are bit-identical for any -workers value.
//
// Verbs:
//
//	ccscen run [flags] <file.json|dir> [...]   run scenarios, print results
//	ccscen batch [flags] <file.json|->         run a batch request, stream NDJSON
//	ccscen optimize [flags] <spec.json|->      search a design space for the
//	                                           Pareto frontier
//	ccscen perf [flags] <file.json|->          failure/repair performability
//	                                           analysis (degraded-mode metrics)
//	ccscen fleet [flags] <file.json|->         time-domain fleet simulation of
//	                                           a scenario's fleetsim timeline
//	ccscen validate <file.json|dir> [...]      check files without running
//	ccscen list [dir]                          summarize a scenario directory
//
// Examples:
//
//	ccscen run examples/scenarios/fig3.json
//	ccscen run -workers 8 -quick -outdir results/ examples/scenarios
//	ccscen batch batchfile.json
//	ccscen batch - < batchfile.json
//	ccscen optimize examples/scenarios/optimize/budget-cluster-mix.json
//	ccscen optimize -ndjson spec.json > frontier.ndjson
//	ccscen perf examples/scenarios/perfab/hetero-node-failures.json
//	ccscen fleet examples/scenarios/fleetsim/repair-crew-split.json
//	ccscen validate examples/scenarios
//	ccscen list examples/scenarios
//
// The scenario file format, the batch request/NDJSON stream formats,
// the optimizer's SearchSpec format and the performability/fleetsim
// blocks are documented in README.md. `ccscen batch`, `ccscen
// optimize`, `ccscen perf` and `ccscen fleet` evaluate the same
// documents POST /v1/batch, /v1/optimize, /v1/performability and
// /v1/fleetsim accept, through the same engine and result cache,
// without a server. `ccscen validate` is kind-aware: it walks
// directories recursively and checks scenario, fleetsim and optimize
// documents each against its own schema.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/ccnet/ccnet/internal/experiments"
	"github.com/ccnet/ccnet/internal/fleetsim"
	"github.com/ccnet/ccnet/internal/optimize"
	"github.com/ccnet/ccnet/internal/perfab"
	"github.com/ccnet/ccnet/internal/scenario"
	"github.com/ccnet/ccnet/internal/service"
	"github.com/ccnet/ccnet/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches verbs; split from main so the table-driven CLI tests
// can exercise exit codes and usage output without exec'ing.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:], stdout, stderr)
	case "batch":
		return batchCmd(args[1:], stdout, stderr)
	case "optimize":
		return optimizeCmd(args[1:], stdout, stderr)
	case "perf":
		return perfCmd(args[1:], stdout, stderr)
	case "fleet":
		return fleetCmd(args[1:], stdout, stderr)
	case "validate":
		return validateCmd(args[1:], stdout, stderr)
	case "list":
		return listCmd(args[1:], stdout, stderr)
	case "-version", "--version":
		fmt.Fprintln(stdout, version.String("ccscen"))
		return 0
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "ccscen: unknown verb %q (valid: run, batch, optimize, perf, fleet, validate, list)\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  ccscen run [flags] <file.json|dir> [...]   run scenarios, print results
  ccscen batch [flags] <file.json|->         run a batch request, stream NDJSON
  ccscen optimize [flags] <spec.json|->      search a design space for the
                                             Pareto frontier
  ccscen perf [flags] <file.json|->          failure/repair performability
                                             analysis of a scenario's
                                             performability block
  ccscen fleet [flags] <file.json|->         time-domain fleet simulation of
                                             a scenario's fleetsim timeline
  ccscen validate <file.json|dir> [...]      check scenario, fleetsim and
                                             optimize files (recursive)
  ccscen list [dir]                          summarize a scenario directory
  ccscen -version                            print version and exit

run flags:
  -workers N   worker goroutines (default GOMAXPROCS); results are
               identical for every N
  -quick       reduced simulation message counts (fast, less precise)
  -outdir DIR  write one CSV per scenario into DIR
  -plot        render an ASCII chart of each scenario

batch flags:
  -workers N   worker goroutines sharding the batch (default GOMAXPROCS)

optimize flags:
  -workers N   worker goroutines evaluating candidates (default
               GOMAXPROCS); the frontier is identical for every N
  -ndjson      stream NDJSON progress + frontier lines to stdout (the
               POST /v1/optimize wire format) instead of a table
  -out FILE    also write the full report JSON to FILE

perf flags:
  -workers N   worker goroutines evaluating availability states (default
               GOMAXPROCS); the report is identical for every N
  -ndjson      stream NDJSON progress + result lines to stdout (the
               POST /v1/performability wire format) instead of a table
  -out FILE    also write the full report JSON to FILE

fleet flags:
  -workers N   worker goroutines evaluating trajectory states (default
               GOMAXPROCS); the report is identical for every N
  -ndjson      stream NDJSON epoch + result lines to stdout (the
               POST /v1/fleetsim wire format) instead of a table
  -out FILE    also write the full report JSON to FILE
`)
}

// batchCmd runs a POST /v1/batch request document offline: items are
// sharded across the worker pool, results stream to stdout as NDJSON in
// item order (identical to the HTTP stream), and repeated specs within
// the batch hit the same canonical-spec result cache the server uses.
func batchCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccscen batch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker goroutines sharding the batch (default GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "ccscen batch: exactly one batch file (or - for stdin) required")
		return 2
	}

	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if arg := fs.Arg(0); arg != "-" {
		f, err := os.Open(arg)
		if err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
		defer f.Close()
		in, name = f, arg
	}
	req, err := service.ParseBatch(in)
	if err != nil {
		fmt.Fprintf(stderr, "ccscen: batch %s: %v\n", name, err)
		return 1
	}

	srv := service.New(service.Options{Workers: *workers})
	sum, err := srv.RunBatch(context.Background(), req.Items, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if sum.Failed > 0 {
		fmt.Fprintf(stderr, "ccscen: %d of %d batch item(s) failed\n", sum.Failed, sum.Items)
		return 1
	}
	return 0
}

// optimizeCmd runs a design-space search offline: candidates are
// sharded across the worker pool, progress goes to stderr, and the
// Pareto frontier prints as a table (or, with -ndjson, the whole run
// streams to stdout in the POST /v1/optimize wire format). The frontier
// is bit-identical for a given spec+seed at any -workers value.
func optimizeCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccscen optimize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker goroutines evaluating candidates (default GOMAXPROCS)")
	ndjson := fs.Bool("ndjson", false, "stream NDJSON progress + frontier lines to stdout")
	outFile := fs.String("out", "", "also write the full report JSON to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "ccscen optimize: exactly one search spec file (or - for stdin) required")
		return 2
	}

	var spec *optimize.SearchSpec
	var err error
	if arg := fs.Arg(0); arg == "-" {
		spec, err = optimize.Parse(os.Stdin, "<stdin>")
	} else {
		spec, err = optimize.Load(arg)
	}
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}

	if *ndjson {
		srv := service.New(service.Options{Workers: *workers})
		rep, err := srv.RunOptimize(context.Background(), spec, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
		// stdout is the NDJSON stream; the write notice goes to stderr.
		return writeReportFile(*outFile, rep, stderr, stderr)
	}

	start := time.Now()
	eng := &optimize.Engine{Workers: *workers, Progress: func(p optimize.Progress) {
		fmt.Fprintf(stderr, "optimize: %s %d/%d processed, %d feasible, frontier %d\n",
			p.Method, p.Processed, p.SpaceSize, p.Feasible, p.FrontierSize)
	}}
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	renderReport(stdout, rep, time.Since(start))
	return writeReportFile(*outFile, rep, stdout, stderr)
}

// renderReport prints the frontier table and the best configuration.
func renderReport(w io.Writer, rep *optimize.Report, elapsed time.Duration) {
	fmt.Fprintf(w, "search %s: objective=%s method=%s seed=%d\n",
		rep.Name, rep.Objective, rep.Method, rep.Seed)
	fmt.Fprintf(w, "space %d candidates; processed %d, evaluated %d, feasible %d (infeasible: %d structure, %d nodes, %d cost, %d saturation, %d latency, %d availability)\n",
		rep.SpaceSize, rep.Processed, rep.Evaluated, rep.Feasible,
		rep.Infeasible.Structure, rep.Infeasible.Nodes, rep.Infeasible.Cost,
		rep.Infeasible.Saturation, rep.Infeasible.Latency, rep.Infeasible.Availability)

	fmt.Fprintf(w, "\nPareto frontier (%d non-dominated configs):\n", len(rep.Frontier))
	fmt.Fprintf(w, "%-12s %-6s %-4s %-12s %-12s %-12s %s\n",
		"id", "N", "C", "cost", "sat λ", "latency", "@λ")
	for i := range rep.Frontier {
		p := &rep.Frontier[i]
		mark := " "
		if rep.Best != nil && p.ID == rep.Best.ID {
			mark = "*"
		}
		fmt.Fprintf(w, "%-12d %-6d %-4d %-12.6g %-12.6g %-12.6g %.6g %s\n",
			p.ID, p.Nodes, p.Clusters, p.Cost, p.SaturationLambda, p.Latency, p.LatencyLambda, mark)
	}
	if rep.Best != nil {
		cfg, err := json.Marshal(rep.Best.System)
		if err == nil {
			fmt.Fprintf(w, "\nbest (*) by %s: id=%d system=%s\n", rep.Objective, rep.Best.ID, cfg)
		}
	}
	fmt.Fprintf(w, "(search completed in %v)\n", elapsed.Round(time.Millisecond))
}

// writeReportFile writes the report JSON to path when requested; a nil
// report (cached -ndjson answer) skips the write. notice receives the
// "wrote" confirmation — stderr in -ndjson mode, where stdout must stay
// pure NDJSON.
func writeReportFile(path string, rep *optimize.Report, notice, stderr io.Writer) int {
	if path == "" || rep == nil {
		return 0
	}
	b, err := json.Marshal(rep)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	fmt.Fprintf(notice, "wrote %s\n", path)
	return 0
}

// perfCmd runs a performability analysis offline: a scenario file with
// a performability block is loaded, the availability states are sharded
// across the worker pool, progress goes to stderr, and the report prints
// as a table (or, with -ndjson, streams to stdout in the POST
// /v1/performability wire format). The report is bit-identical for a
// given spec+seed at any -workers value.
func perfCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccscen perf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker goroutines evaluating availability states (default GOMAXPROCS)")
	ndjson := fs.Bool("ndjson", false, "stream NDJSON progress + result lines to stdout")
	outFile := fs.String("out", "", "also write the full report JSON to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "ccscen perf: exactly one scenario file (or - for stdin) required")
		return 2
	}

	var spec *scenario.Spec
	var err error
	if arg := fs.Arg(0); arg == "-" {
		spec, err = scenario.Parse(os.Stdin, "<stdin>")
	} else {
		spec, err = scenario.Load(arg)
	}
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if spec.Performability == nil {
		fmt.Fprintf(stderr, "ccscen: scenario %s has no performability block\n", spec.Name)
		return 1
	}

	if *ndjson {
		srv := service.New(service.Options{Workers: *workers})
		rep, err := srv.RunPerformability(context.Background(), spec, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
		// stdout is the NDJSON stream; the write notice goes to stderr.
		return writePerfReportFile(*outFile, rep, stderr, stderr)
	}

	study, err := spec.PerformabilityStudy()
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	start := time.Now()
	eng := &perfab.Engine{Workers: *workers, Progress: func(p perfab.Progress) {
		fmt.Fprintf(stderr, "perf: %s %d/%d states evaluated, %d down\n",
			p.Method, p.Evaluated, p.States, p.Down)
	}}
	rep, err := eng.Run(context.Background(), study)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	renderPerfReport(stdout, rep, time.Since(start))
	return writePerfReportFile(*outFile, rep, stdout, stderr)
}

// renderPerfReport prints the performability summary tables.
func renderPerfReport(w io.Writer, rep *perfab.Report, elapsed time.Duration) {
	fmt.Fprintf(w, "performability %s: method=%s seed=%d probe λ=%.6g\n",
		rep.Name, rep.Method, rep.Seed, rep.ProbeLambda)
	fmt.Fprintf(w, "state space %.6g; evaluated %d states covering %.6g of the probability mass\n",
		rep.StateSpace, rep.StatesEvaluated, rep.CoveredProbability)

	fmt.Fprintf(w, "\nfailure classes:\n")
	fmt.Fprintf(w, "%-26s %-8s %-14s %s\n", "class", "count", "availability", "E[failed]")
	for _, c := range rep.Classes {
		fmt.Fprintf(w, "%-26s %-8d %-14.6g %.6g\n", c.Label, c.Count, c.Availability, c.ExpectedFailed)
	}

	fmt.Fprintf(w, "\n%-26s %-14s %s\n", "metric", "nominal", "expected")
	fmt.Fprintf(w, "%-26s %-14.6g %.6g\n", "latency @ probe", rep.Nominal.Latency, rep.ExpectedLatency)
	fmt.Fprintf(w, "%-26s %-14.6g %.6g\n", "saturation λ*", rep.Nominal.SaturationLambda, rep.ExpectedSaturation)
	fmt.Fprintf(w, "%-26s %-14.6g %.6g\n", "capacity (msgs/t)", rep.Nominal.Capacity, rep.ExpectedCapacity)
	fmt.Fprintf(w, "%-26s %-14.6g %.6g\n", "served fraction", 1.0, rep.ExpectedServedFraction)
	fmt.Fprintf(w, "\navailability %.8g, P(SLO violation) %.6g, P(probe servable) %.6g\n",
		rep.Availability, rep.SLOViolation, rep.LatencyFiniteProbability)

	if len(rep.Percentiles) > 0 {
		fmt.Fprintf(w, "\ncapacity percentiles (largest capacity delivered with probability >= q):\n")
		for _, p := range rep.Percentiles {
			fmt.Fprintf(w, "  q=%-6g capacity %.6g\n", p.Q, p.Capacity)
		}
	}
	if len(rep.TopStates) > 0 {
		fmt.Fprintf(w, "\ntop states by probability:\n")
		fmt.Fprintf(w, "%-12s %-6s %-8s %-12s %s\n", "weight", "up", "served", "capacity", "latency")
		for _, s := range rep.TopStates {
			lat := "saturated"
			if s.Latency != nil {
				lat = fmt.Sprintf("%.6g", *s.Latency)
			}
			fmt.Fprintf(w, "%-12.6g %-6t %-8.4g %-12.6g %s\n", s.Weight, s.Up, s.ServedFraction, s.Capacity, lat)
		}
	}
	fmt.Fprintf(w, "(analysis completed in %v)\n", elapsed.Round(time.Millisecond))
}

// writePerfReportFile writes the report JSON to path when requested; a
// nil report (cached -ndjson answer) skips the write.
func writePerfReportFile(path string, rep *perfab.Report, notice, stderr io.Writer) int {
	if path == "" || rep == nil {
		return 0
	}
	b, err := json.Marshal(rep)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	fmt.Fprintf(notice, "wrote %s\n", path)
	return 0
}

// fleetCmd runs a time-domain fleet simulation offline: a scenario file
// with a fleetsim block is loaded, the trajectory's unique states are
// sharded across the worker pool, and the report prints as a table (or,
// with -ndjson, streams to stdout in the POST /v1/fleetsim wire format).
// The report is bit-identical for a given spec+seed at any -workers
// value. Exit status 1 when any fleet assertion fails, so CI can gate on
// recovery envelopes directly.
func fleetCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccscen fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker goroutines evaluating trajectory states (default GOMAXPROCS)")
	ndjson := fs.Bool("ndjson", false, "stream NDJSON epoch + result lines to stdout")
	outFile := fs.String("out", "", "also write the full report JSON to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "ccscen fleet: exactly one scenario file (or - for stdin) required")
		return 2
	}

	var spec *scenario.Spec
	var err error
	if arg := fs.Arg(0); arg == "-" {
		spec, err = scenario.Parse(os.Stdin, "<stdin>")
	} else {
		spec, err = scenario.Load(arg)
	}
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if spec.FleetSim == nil {
		fmt.Fprintf(stderr, "ccscen: scenario %s has no fleetsim block\n", spec.Name)
		return 1
	}

	if *ndjson {
		srv := service.New(service.Options{Workers: *workers})
		rep, err := srv.RunFleetSim(context.Background(), spec, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
		// stdout is the NDJSON stream; the write notice goes to stderr.
		if code := writeFleetReportFile(*outFile, rep, stderr, stderr); code != 0 {
			return code
		}
		return fleetExitCode(rep, stderr)
	}

	study, err := spec.FleetStudy()
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	start := time.Now()
	eng := &fleetsim.Engine{Workers: *workers}
	rep, err := eng.Run(context.Background(), study)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	renderFleetReport(stdout, rep, time.Since(start))
	if code := writeFleetReportFile(*outFile, rep, stdout, stderr); code != 0 {
		return code
	}
	return fleetExitCode(rep, stderr)
}

// fleetExitCode maps failed assertions to exit status 1. A nil report
// (cached -ndjson answer) carries no assertion verdicts to gate on.
func fleetExitCode(rep *fleetsim.Report, stderr io.Writer) int {
	if rep == nil || rep.FailedAssertions == 0 {
		return 0
	}
	fmt.Fprintf(stderr, "ccscen: %d of %d fleet assertion(s) failed\n",
		rep.FailedAssertions, len(rep.Assertions))
	return 1
}

// renderFleetReport prints the trajectory summary tables.
func renderFleetReport(w io.Writer, rep *fleetsim.Report, elapsed time.Duration) {
	fmt.Fprintf(w, "fleet %s: seed=%d horizon=%.6g epoch=%.6g probe λ=%.6g stochastic=%t\n",
		rep.Name, rep.Seed, rep.Horizon, rep.Epoch, rep.ProbeLambda, rep.Stochastic)
	fmt.Fprintf(w, "trajectory: %d epochs, %d stochastic transitions, %d unique states\n",
		len(rep.Epochs), rep.Transitions, rep.UniqueStates)

	if len(rep.Timeline) > 0 {
		fmt.Fprintf(w, "\ntimeline (as applied):\n")
		for _, ev := range rep.Timeline {
			if ev.Action == "set_lambda" {
				fmt.Fprintf(w, "  t=%-10.6g %-16s λ=%.6g\n", ev.At, ev.Action, ev.Lambda)
				continue
			}
			fmt.Fprintf(w, "  t=%-10.6g %-16s %-24s requested %d, applied %d\n",
				ev.At, ev.Action, ev.Class, ev.Requested, ev.Applied)
		}
	}

	fmt.Fprintf(w, "\n%-6s %-12s %-8s %-8s %-10s %-12s %-12s %s\n",
		"epoch", "t0", "failed", "up", "served", "latency", "sat λ", "capacity")
	for i := range rep.Epochs {
		ep := &rep.Epochs[i]
		failed := 0
		for _, f := range ep.Failed {
			failed += f
		}
		lat := "saturated"
		if ep.Latency != nil {
			lat = fmt.Sprintf("%.6g", *ep.Latency)
		}
		fmt.Fprintf(w, "%-6d %-12.6g %-8d %-8.4g %-10.6g %-12s %-12.6g %.6g\n",
			ep.Index, ep.T0, failed, ep.UpFraction, ep.ServedFraction, lat,
			ep.SaturationLambda, ep.Capacity)
	}

	lr := &rep.LongRun
	fmt.Fprintf(w, "\nlong-run (time-weighted over the horizon):\n")
	fmt.Fprintf(w, "  availability %.8g, E[latency] %.6g, E[served] %.6g\n",
		lr.Availability, lr.ExpectedLatency, lr.ExpectedServedFraction)
	fmt.Fprintf(w, "  E[sat λ] %.6g, E[capacity] %.6g, P(SLO violation) %.6g, P(probe servable) %.6g\n",
		lr.ExpectedSaturation, lr.ExpectedCapacity, lr.SLOViolation, lr.LatencyFiniteProbability)

	if len(rep.Assertions) > 0 {
		fmt.Fprintf(w, "\nassertions:\n")
		for _, a := range rep.Assertions {
			status := "PASS"
			if !a.Passed {
				status = "FAIL"
			}
			window := ""
			if a.From != 0 || a.To != 0 {
				window = fmt.Sprintf(" in [%.6g, %.6g]", a.From, a.To)
			}
			fmt.Fprintf(w, "  %-22s %-6.6g %s  observed %.6g%s\n", a.Check, a.Value, status, a.Observed, window)
		}
	}
	fmt.Fprintf(w, "(simulation completed in %v)\n", elapsed.Round(time.Millisecond))
}

// writeFleetReportFile writes the report JSON to path when requested; a
// nil report (cached -ndjson answer) skips the write.
func writeFleetReportFile(path string, rep *fleetsim.Report, notice, stderr io.Writer) int {
	if path == "" || rep == nil {
		return 0
	}
	b, err := json.Marshal(rep)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	fmt.Fprintf(notice, "wrote %s\n", path)
	return 0
}

func runCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccscen run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker goroutines (default GOMAXPROCS)")
	quick := fs.Bool("quick", false, "reduced simulation message counts (fast, less precise)")
	outdir := fs.String("outdir", "", "write one CSV per scenario into this directory")
	plot := fs.Bool("plot", false, "render an ASCII chart of each scenario")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "ccscen run: at least one scenario file or directory required")
		return 2
	}

	specs, err := scenario.LoadAll(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
	}

	start := time.Now()
	r := &scenario.Runner{Workers: *workers, Quick: *quick}
	outcomes := r.Run(specs)

	failures := 0
	for _, o := range outcomes {
		if !o.Passed() {
			failures++
		}
		if o.Err != nil {
			fmt.Fprintf(stderr, "ccscen: scenario %s failed: %v\n", o.Spec.Name, o.Err)
			continue
		}
		if err := experiments.Render(stdout, o.Result); err != nil {
			fmt.Fprintln(stderr, "ccscen:", err)
			return 1
		}
		if *plot {
			if err := experiments.RenderChart(stdout, o.Result, 72, 22); err != nil {
				fmt.Fprintln(stderr, "ccscen:", err)
				return 1
			}
		}
		for _, a := range o.Assertions {
			status := "PASS"
			if !a.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(stdout, "assert %-12s %s  %s\n", a.Spec.Type, status, a.Detail)
		}
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", o.Spec.Name, o.Elapsed.Round(time.Millisecond))
		if *outdir != "" {
			path := filepath.Join(*outdir, o.Spec.Name+".csv")
			if err := writeCSV(path, o.Result); err != nil {
				fmt.Fprintln(stderr, "ccscen:", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", path)
		}
	}
	fmt.Fprintf(stdout, "campaign: %d scenario(s), %d failed, %v total\n",
		len(outcomes), failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return 1
	}
	return 0
}

func writeCSV(path string, res *experiments.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, res); err != nil {
		return err
	}
	return f.Close()
}

// validateCmd checks documents without running them. Directories are
// walked recursively so one invocation covers a whole examples tree,
// and each file is dispatched by its "kind" field: optimize search
// specs go through the optimizer's loader, everything else (plain
// scenarios and kind "fleetsim") through the scenario loader. Every
// broken file is reported — one bad spec does not hide the rest.
func validateCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "ccscen validate: at least one scenario file or directory required")
		return 2
	}
	paths, err := collectSpecFiles(args)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	bad := 0
	for _, p := range paths {
		name, err := validateFile(p)
		if err != nil {
			fmt.Fprintf(stderr, "ccscen: %s: %v\n", p, err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "ok: %s\n", name)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// collectSpecFiles expands the arguments — files taken as-is,
// directories walked recursively for *.json — into one sorted list, so
// validation order is reproducible regardless of argument order.
func collectSpecFiles(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		before := len(paths)
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".json") {
				paths = append(paths, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(paths) == before {
			return nil, fmt.Errorf("no *.json files under %s", arg)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// validateFile loads one document through the loader its kind selects,
// dry-building systems where the schema alone cannot see structural
// constraints (C = 2(m/2)^n). It returns the document's name.
func validateFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	// Sniff only the kind; malformed JSON falls through to the kind's
	// own loader, whose decode errors carry field paths.
	var sniff struct {
		Kind string `json:"kind"`
	}
	_ = json.Unmarshal(b, &sniff)
	if sniff.Kind == "optimize" {
		spec, err := optimize.Parse(bytes.NewReader(b), filepath.Base(path))
		if err != nil {
			return "", err
		}
		return spec.Name, nil
	}
	spec, err := scenario.Parse(bytes.NewReader(b), filepath.Base(path))
	if err != nil {
		return "", err
	}
	if _, err := spec.BuildSystem(); err != nil {
		return "", fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	return spec.Name, nil
}

func listCmd(args []string, stdout, stderr io.Writer) int {
	dir := "examples/scenarios"
	if len(args) > 0 {
		dir = args[0]
	}
	sums, err := scenario.ListDir(dir)
	if err != nil {
		fmt.Fprintln(stderr, "ccscen:", err)
		return 1
	}
	if len(sums) == 0 {
		fmt.Fprintf(stderr, "ccscen: no *.json scenarios in %s\n", dir)
		return 1
	}
	for _, s := range sums {
		if s.Err != nil {
			fmt.Fprintf(stdout, "%-28s INVALID: %v\n", filepath.Base(s.Path), s.Err)
			continue
		}
		desc := s.Description
		if desc == "" {
			desc = s.Title
		}
		fmt.Fprintf(stdout, "%-28s %-24s %s\n", filepath.Base(s.Path), s.Name, desc)
	}
	return 0
}
