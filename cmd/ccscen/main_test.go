package main

import (
	"strings"
	"testing"
)

// TestRun exercises the CLI contract: -version exits 0, bad verbs and
// bad flags exit 2 with usage text, and validate works against the
// shipped example scenarios.
func TestRun(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string
		wantStderr string
	}{
		{"version", []string{"-version"}, 0, "ccscen version", ""},
		{"noArgs", []string{}, 2, "", "usage:"},
		{"unknownVerb", []string{"frobnicate"}, 2, "", `unknown verb "frobnicate"`},
		{"help", []string{"help"}, 0, "usage:", ""},
		{"runBadFlag", []string{"run", "-no-such-flag"}, 2, "", "flag provided but not defined"},
		{"runNoFiles", []string{"run"}, 2, "", "at least one scenario file"},
		{"validateNoFiles", []string{"validate"}, 2, "", "at least one scenario file"},
		{"validateMissing", []string{"validate", "no-such-file.json"}, 1, "", "no-such-file.json"},
		{"validateExamples", []string{"validate", "../../examples/scenarios/fig3.json"}, 0, "ok: fig3", ""},
		{"listExamples", []string{"list", "../../examples/scenarios"}, 0, "fig3", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.wantStdout)
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}
