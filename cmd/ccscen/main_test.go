package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ccnet/ccnet/internal/clitest"
)

// TestRun exercises the CLI contract: -version exits 0, bad verbs and
// bad flags exit 2 with usage text, and validate works against the
// shipped example scenarios.
func TestRun(t *testing.T) {
	clitest.Table(t, run, []clitest.Case{
		{Name: "version", Args: []string{"-version"}, WantCode: 0, WantStdout: "ccscen version"},
		{Name: "noArgs", Args: []string{}, WantCode: 2, WantStderr: "usage:"},
		{Name: "unknownVerb", Args: []string{"frobnicate"}, WantCode: 2, WantStderr: `unknown verb "frobnicate"`},
		{Name: "help", Args: []string{"help"}, WantCode: 0, WantStdout: "usage:"},
		{Name: "runBadFlag", Args: []string{"run", "-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "runNoFiles", Args: []string{"run"}, WantCode: 2, WantStderr: "at least one scenario file"},
		{Name: "validateNoFiles", Args: []string{"validate"}, WantCode: 2, WantStderr: "at least one scenario file"},
		{Name: "validateMissing", Args: []string{"validate", "no-such-file.json"}, WantCode: 1, WantStderr: "no-such-file.json"},
		{Name: "validateExamples", Args: []string{"validate", "../../examples/scenarios/fig3.json"}, WantCode: 0, WantStdout: "ok: fig3"},
		{Name: "listExamples", Args: []string{"list", "../../examples/scenarios"}, WantCode: 0, WantStdout: "fig3"},
		{Name: "batchBadFlag", Args: []string{"batch", "-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "batchNoFile", Args: []string{"batch"}, WantCode: 2, WantStderr: "exactly one batch file"},
		{Name: "batchMissing", Args: []string{"batch", "no-such-file.json"}, WantCode: 1, WantStderr: "no-such-file.json"},
	})
}

// TestBatchVerb runs a real mixed batch file and checks the NDJSON
// stream: one result line per item in order, a summary line, and a
// cache hit for the repeated spec.
func TestBatchVerb(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.json")
	doc := `{"items": [
		{"id": "one", "kind": "evaluate", "spec": {"system": {"preset": "small"}, "message": {"flits": 16, "flitBytes": 128}, "lambda": 1e-4}},
		{"id": "two", "kind": "evaluate", "spec": {"system": {"preset": "small"}, "message": {"flits": 16, "flitBytes": 128}, "lambda": 1e-4}}
	]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got := clitest.Run(run, "batch", "-workers", "1", path)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	lines := strings.Split(strings.TrimSpace(got.Stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d NDJSON lines, want 3:\n%s", len(lines), got.Stdout)
	}
	if !strings.Contains(lines[0], `"id":"one"`) || !strings.Contains(lines[1], `"id":"two"`) {
		t.Fatalf("result lines out of order:\n%s", got.Stdout)
	}
	if !strings.Contains(lines[1], `"cached":true`) {
		t.Fatalf("repeated spec not answered from cache: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"type":"summary"`) || !strings.Contains(lines[2], `"cacheHits":1`) {
		t.Fatalf("bad summary line: %s", lines[2])
	}

	// A batch with a failing item exits 1 but still streams all lines.
	bad := filepath.Join(t.TempDir(), "bad.json")
	doc = `{"items": [
		{"kind": "evaluate", "spec": {"system": {"preset": "small"}, "message": {"flits": 16, "flitBytes": 128}, "lambda": 1e-4}},
		{"kind": "nope", "spec": {}}
	]}`
	if err := os.WriteFile(bad, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got = clitest.Run(run, "batch", bad)
	if got.Code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", got.Code, got.Stderr)
	}
	if !strings.Contains(got.Stdout, `unknown kind \"nope\"`) {
		t.Fatalf("item error missing from stream:\n%s", got.Stdout)
	}
	if !strings.Contains(got.Stderr, "1 of 2 batch item(s) failed") {
		t.Fatalf("stderr %q lacks the failure count", got.Stderr)
	}
}
