package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ccnet/ccnet/internal/clitest"
)

// TestRun exercises the CLI contract: -version exits 0, bad verbs and
// bad flags exit 2 with usage text, and validate works against the
// shipped example scenarios.
func TestRun(t *testing.T) {
	clitest.Table(t, run, []clitest.Case{
		{Name: "version", Args: []string{"-version"}, WantCode: 0, WantStdout: "ccscen version"},
		{Name: "noArgs", Args: []string{}, WantCode: 2, WantStderr: "usage:"},
		{Name: "unknownVerb", Args: []string{"frobnicate"}, WantCode: 2, WantStderr: `unknown verb "frobnicate"`},
		{Name: "help", Args: []string{"help"}, WantCode: 0, WantStdout: "usage:"},
		{Name: "runBadFlag", Args: []string{"run", "-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "runNoFiles", Args: []string{"run"}, WantCode: 2, WantStderr: "at least one scenario file"},
		{Name: "validateNoFiles", Args: []string{"validate"}, WantCode: 2, WantStderr: "at least one scenario file"},
		{Name: "validateMissing", Args: []string{"validate", "no-such-file.json"}, WantCode: 1, WantStderr: "no-such-file.json"},
		{Name: "validateExamples", Args: []string{"validate", "../../examples/scenarios/fig3.json"}, WantCode: 0, WantStdout: "ok: fig3"},
		{Name: "listExamples", Args: []string{"list", "../../examples/scenarios"}, WantCode: 0, WantStdout: "fig3"},
		{Name: "batchBadFlag", Args: []string{"batch", "-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "batchNoFile", Args: []string{"batch"}, WantCode: 2, WantStderr: "exactly one batch file"},
		{Name: "batchMissing", Args: []string{"batch", "no-such-file.json"}, WantCode: 1, WantStderr: "no-such-file.json"},
		{Name: "optimizeBadFlag", Args: []string{"optimize", "-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "optimizeNoFile", Args: []string{"optimize"}, WantCode: 2, WantStderr: "exactly one search spec"},
		{Name: "optimizeMissing", Args: []string{"optimize", "no-such-file.json"}, WantCode: 1, WantStderr: "no-such-file.json"},
		{Name: "optimizeExample", Args: []string{"optimize", "../../examples/scenarios/optimize/icn2-upgrade-pareto.json"},
			WantCode: 0, WantStdout: "Pareto frontier"},
		{Name: "perfBadFlag", Args: []string{"perf", "-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "perfNoFile", Args: []string{"perf"}, WantCode: 2, WantStderr: "exactly one scenario file"},
		{Name: "perfMissing", Args: []string{"perf", "no-such-file.json"}, WantCode: 1, WantStderr: "no-such-file.json"},
		{Name: "fleetBadFlag", Args: []string{"fleet", "-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "fleetNoFile", Args: []string{"fleet"}, WantCode: 2, WantStderr: "exactly one scenario file"},
		{Name: "fleetMissing", Args: []string{"fleet", "no-such-file.json"}, WantCode: 1, WantStderr: "no-such-file.json"},
		// validate walks directories recursively and dispatches each file
		// by kind: fleetsim specs load through the scenario loader,
		// optimize search specs through the optimizer's.
		{Name: "validateRecursive", Args: []string{"validate", "../../examples/scenarios"},
			WantCode: 0, WantStdout: "ok: fleet-az-cascade-1120"},
		{Name: "validateOptimizeKind", Args: []string{"validate", "../../examples/scenarios/optimize/icn2-upgrade-pareto.json"},
			WantCode: 0, WantStdout: "ok: icn2-upgrade-pareto"},
	})
}

// optimizeSpec is a fast 96-candidate grid with a cost model.
const optimizeSpec = `{
	"name": "cli-opt",
	"space": {
		"ports": [4],
		"icn2Scale": [1, 1.5],
		"groups": [{"counts": [0, 4, 8], "treeLevels": [1, 2], "icn1": ["net1", "net2"], "ecn1": ["net1", "net2"]}]
	},
	"message": {"flits": 16, "flitBytes": 128},
	"constraints": {"cost": {"switchBase": 10, "linkBase": 1}}
}`

// TestOptimizeVerb runs a small search end to end: the frontier table
// renders, -out writes the report, and repeated runs (any -workers) are
// bit-identical.
func TestOptimizeVerb(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(optimizeSpec), 0o644); err != nil {
		t.Fatal(err)
	}

	out1 := filepath.Join(dir, "rep1.json")
	got := clitest.Run(run, "optimize", "-workers", "1", "-out", out1, spec)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	if !strings.Contains(got.Stdout, "Pareto frontier") || !strings.Contains(got.Stdout, "best (*)") {
		t.Fatalf("missing frontier output:\n%s", got.Stdout)
	}

	out2 := filepath.Join(dir, "rep2.json")
	got = clitest.Run(run, "optimize", "-workers", "4", "-out", out2, spec)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("reports differ across -workers 1 and 4")
	}

	// -ndjson speaks the POST /v1/optimize wire format; stdout must be
	// pure NDJSON even with -out (the write notice goes to stderr).
	out3 := filepath.Join(dir, "rep3.json")
	got = clitest.Run(run, "optimize", "-ndjson", "-out", out3, spec)
	if got.Code != 0 {
		t.Fatalf("ndjson exit %d: %s", got.Code, got.Stderr)
	}
	lines := strings.Split(strings.TrimSpace(got.Stdout), "\n")
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("stdout line %d is not JSON: %q", i, l)
		}
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"kind":"result"`) || !strings.Contains(last, `"cached":false`) {
		t.Fatalf("terminal NDJSON line: %s", last)
	}
	if !strings.Contains(got.Stderr, "wrote "+out3) {
		t.Fatalf("write notice missing from stderr: %q", got.Stderr)
	}
}

// TestBatchVerb runs a real mixed batch file and checks the NDJSON
// stream: one result line per item in order, a summary line, and a
// cache hit for the repeated spec.
func TestBatchVerb(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.json")
	doc := `{"items": [
		{"id": "one", "kind": "evaluate", "spec": {"system": {"preset": "small"}, "message": {"flits": 16, "flitBytes": 128}, "lambda": 1e-4}},
		{"id": "two", "kind": "evaluate", "spec": {"system": {"preset": "small"}, "message": {"flits": 16, "flitBytes": 128}, "lambda": 1e-4}}
	]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got := clitest.Run(run, "batch", "-workers", "1", path)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	lines := strings.Split(strings.TrimSpace(got.Stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d NDJSON lines, want 3:\n%s", len(lines), got.Stdout)
	}
	if !strings.Contains(lines[0], `"id":"one"`) || !strings.Contains(lines[1], `"id":"two"`) {
		t.Fatalf("result lines out of order:\n%s", got.Stdout)
	}
	if !strings.Contains(lines[1], `"cached":true`) {
		t.Fatalf("repeated spec not answered from cache: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"kind":"result"`) || !strings.Contains(lines[2], `"cacheHits":1`) {
		t.Fatalf("bad summary line: %s", lines[2])
	}

	// A batch with a failing item exits 1 but still streams all lines.
	bad := filepath.Join(t.TempDir(), "bad.json")
	doc = `{"items": [
		{"kind": "evaluate", "spec": {"system": {"preset": "small"}, "message": {"flits": 16, "flitBytes": 128}, "lambda": 1e-4}},
		{"kind": "nope", "spec": {}}
	]}`
	if err := os.WriteFile(bad, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got = clitest.Run(run, "batch", bad)
	if got.Code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", got.Code, got.Stderr)
	}
	if !strings.Contains(got.Stdout, `unknown kind \"nope\"`) {
		t.Fatalf("item error missing from stream:\n%s", got.Stdout)
	}
	if !strings.Contains(got.Stderr, "1 of 2 batch item(s) failed") {
		t.Fatalf("stderr %q lacks the failure count", got.Stderr)
	}
}

// TestBatchVerbEmptyStream is the empty-batch regression: a zero-item
// document and a completely empty stdin both exit 0 with exactly one
// valid zero-item summary line.
func TestBatchVerbEmptyStream(t *testing.T) {
	for name, doc := range map[string]string{"emptyItems": `{"items": []}`, "emptyObject": `{}`} {
		path := filepath.Join(t.TempDir(), "empty.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		got := clitest.Run(run, "batch", path)
		if got.Code != 0 {
			t.Fatalf("%s: exit %d: %s", name, got.Code, got.Stderr)
		}
		lines := strings.Split(strings.TrimSpace(got.Stdout), "\n")
		if len(lines) != 1 {
			t.Fatalf("%s: %d NDJSON lines, want one summary:\n%s", name, len(lines), got.Stdout)
		}
		var sum struct {
			Kind   string `json:"kind"`
			Result struct {
				Items int `json:"items"`
			} `json:"result"`
		}
		if err := json.Unmarshal([]byte(lines[0]), &sum); err != nil {
			t.Fatalf("%s: summary does not parse: %v", name, err)
		}
		if sum.Kind != "result" || sum.Result.Items != 0 {
			t.Fatalf("%s: summary line %s", name, lines[0])
		}
	}
}

// perfScenario is a fast exact-space performability study.
const perfScenario = `{
	"name": "cli-perf",
	"system": {"preset": "small"},
	"traffic": {"flits": 16, "flitBytes": [128], "lambda": {"max": 0.01, "points": 4}},
	"performability": {
		"nodes": [
			{"group": 0, "mttf": 2000, "mttr": 50},
			{"group": 1, "mttf": 1500, "mttr": 50, "repairers": 2}
		],
		"icn2Switches": [{"level": 0, "mttf": 50000, "mttr": 100}],
		"states": {"maxExact": 1000}
	}
}`

// TestPerfVerb runs a performability analysis end to end: the table
// renders, -out writes the report, repeated runs at different -workers
// are bit-identical, and -ndjson speaks the wire format.
func TestPerfVerb(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "perf.json")
	if err := os.WriteFile(spec, []byte(perfScenario), 0o644); err != nil {
		t.Fatal(err)
	}

	out1 := filepath.Join(dir, "rep1.json")
	got := clitest.Run(run, "perf", "-workers", "1", "-out", out1, spec)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	for _, want := range []string{"failure classes", "availability", "capacity percentiles", "top states"} {
		if !strings.Contains(got.Stdout, want) {
			t.Fatalf("table output missing %q:\n%s", want, got.Stdout)
		}
	}

	out2 := filepath.Join(dir, "rep2.json")
	got = clitest.Run(run, "perf", "-workers", "8", "-out", out2, spec)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("reports differ across -workers 1 and 8")
	}

	got = clitest.Run(run, "perf", "-ndjson", spec)
	if got.Code != 0 {
		t.Fatalf("ndjson exit %d: %s", got.Code, got.Stderr)
	}
	lines := strings.Split(strings.TrimSpace(got.Stdout), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"kind":"result"`) || !strings.Contains(last, `"cached":false`) {
		t.Fatalf("terminal NDJSON line: %s", last)
	}

	// A scenario without the block is a clean failure.
	plain := filepath.Join(dir, "plain.json")
	if err := os.WriteFile(plain, []byte(`{
		"name": "no-block",
		"system": {"preset": "small"},
		"traffic": {"flits": 16, "flitBytes": [128], "lambda": {"max": 0.01, "points": 4}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got = clitest.Run(run, "perf", plain)
	if got.Code != 1 || !strings.Contains(got.Stderr, "no performability block") {
		t.Fatalf("exit %d stderr %q", got.Code, got.Stderr)
	}
}

// fleetScenario is a fast fully-scripted fleet simulation: an 8-node
// knockout at t=100, repaired at t=500, with a passing recovery bound.
const fleetScenario = `{
	"kind": "fleetsim",
	"name": "cli-fleet",
	"system": {"preset": "small"},
	"traffic": {"flits": 16, "flitBytes": [128], "lambda": {"max": 0.01, "points": 4}},
	"performability": {
		"nodes": [{"group": 1, "mttf": 1500, "mttr": 50, "repairers": 2}]
	},
	"fleetsim": {
		"horizon": 1000,
		"epoch": 100,
		"stochastic": false,
		"timeline": [
			{"at": 100, "action": "inject_failure", "class": "nodes[g1]", "count": 8},
			{"at": 500, "action": "repair", "class": "nodes[g1]", "count": 8}
		],
		"assertions": [{"check": "recovers_within", "value": 600}]
	}
}`

// TestFleetVerb runs a fleet simulation end to end: the table renders,
// -out writes the report, repeated runs at different -workers are
// bit-identical, -ndjson speaks the wire format, and failed assertions
// map to exit status 1.
func TestFleetVerb(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(spec, []byte(fleetScenario), 0o644); err != nil {
		t.Fatal(err)
	}

	out1 := filepath.Join(dir, "rep1.json")
	got := clitest.Run(run, "fleet", "-workers", "1", "-out", out1, spec)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	for _, want := range []string{"timeline (as applied)", "long-run", "recovers_within", "PASS"} {
		if !strings.Contains(got.Stdout, want) {
			t.Fatalf("table output missing %q:\n%s", want, got.Stdout)
		}
	}

	out2 := filepath.Join(dir, "rep2.json")
	got = clitest.Run(run, "fleet", "-workers", "8", "-out", out2, spec)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("reports differ across -workers 1 and 8")
	}

	got = clitest.Run(run, "fleet", "-ndjson", spec)
	if got.Code != 0 {
		t.Fatalf("ndjson exit %d: %s", got.Code, got.Stderr)
	}
	lines := strings.Split(strings.TrimSpace(got.Stdout), "\n")
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("stdout line %d is not JSON: %q", i, l)
		}
	}
	if len(lines) != 11 {
		t.Fatalf("%d NDJSON lines, want 10 epochs + result:\n%s", len(lines), got.Stdout)
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"kind":"result"`) || !strings.Contains(last, `"cached":false`) {
		t.Fatalf("terminal NDJSON line: %s", last)
	}

	// A scenario without the block is a clean failure.
	plain := filepath.Join(dir, "plain.json")
	if err := os.WriteFile(plain, []byte(`{
		"name": "no-fleet-block",
		"system": {"preset": "small"},
		"traffic": {"flits": 16, "flitBytes": [128], "lambda": {"max": 0.01, "points": 4}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got = clitest.Run(run, "fleet", plain)
	if got.Code != 1 || !strings.Contains(got.Stderr, "no fleetsim block") {
		t.Fatalf("exit %d stderr %q", got.Code, got.Stderr)
	}

	// A timeline against a class the performability block never declared
	// fails at load time with the valid labels listed.
	badClass := filepath.Join(dir, "badclass.json")
	if err := os.WriteFile(badClass, []byte(strings.ReplaceAll(fleetScenario, "nodes[g1]", "nodes[g7]")), 0o644); err != nil {
		t.Fatal(err)
	}
	got = clitest.Run(run, "fleet", badClass)
	if got.Code != 1 || !strings.Contains(got.Stderr, "unknown class") || !strings.Contains(got.Stderr, "nodes[g1]") {
		t.Fatalf("exit %d stderr %q", got.Code, got.Stderr)
	}

	// A violated assertion renders FAIL and exits 1.
	failing := filepath.Join(dir, "failing.json")
	if err := os.WriteFile(failing, []byte(strings.ReplaceAll(fleetScenario, `"value": 600`, `"value": 300`)), 0o644); err != nil {
		t.Fatal(err)
	}
	got = clitest.Run(run, "fleet", failing)
	if got.Code != 1 || !strings.Contains(got.Stdout, "FAIL") || !strings.Contains(got.Stderr, "fleet assertion(s) failed") {
		t.Fatalf("exit %d stdout %q stderr %q", got.Code, got.Stdout, got.Stderr)
	}
}
