// Command ccsim runs the discrete-event cluster-of-clusters simulator at
// one traffic rate and reports measured latency statistics, phase counts,
// and bottleneck utilizations.
//
// Examples:
//
//	ccsim -system 1120 -lambda 2e-4 -flits 32 -flitbytes 256
//	ccsim -system 544 -lambda 5e-4 -measure 100000 -warmup 10000
//	ccsim -system 544 -lambda 3e-4 -pattern hotspot -hotspot-p 0.1
//	ccsim -system 1120 -lambda 1e-4 -top-channels 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/ccnet/ccnet/internal/cluster"
	"github.com/ccnet/ccnet/internal/netchar"
	"github.com/ccnet/ccnet/internal/sim"
	"github.com/ccnet/ccnet/internal/trace"
	"github.com/ccnet/ccnet/internal/traffic"
)

func main() {
	var (
		system    = flag.String("system", "1120", "system organization: 1120, 544 or small")
		lambda    = flag.Float64("lambda", 1e-4, "λ_g: messages per node per time unit")
		flits     = flag.Int("flits", 32, "message length M in flits")
		flitBytes = flag.Int("flitbytes", 256, "flit size d_m in bytes")
		warmup    = flag.Uint64("warmup", 10000, "warm-up messages (discarded)")
		measure   = flag.Uint64("measure", 100000, "measured messages")
		seed      = flag.Uint64("seed", 1, "random seed")
		pattern   = flag.String("pattern", "uniform", "traffic pattern: uniform, hotspot, local")
		hotspotP  = flag.Float64("hotspot-p", 0.1, "fraction of traffic to the hot node")
		localP    = flag.Float64("local-p", 0.5, "fraction of traffic kept intra-cluster")
		topN      = flag.Int("top-channels", 0, "print the N most utilized channels")
		traceOut  = flag.String("trace", "", "write per-message trace to this file (.csv or .jsonl)")
		depth     = flag.Int("buffer-depth", 1, "channel input buffer depth in flits (paper: 1)")
	)
	flag.Parse()

	sys, err := systemByName(*system)
	if err != nil {
		fatal(err)
	}

	cfg := sim.Config{
		Sys:                sys,
		Msg:                netchar.MessageSpec{Flits: *flits, FlitBytes: *flitBytes},
		Lambda:             *lambda,
		Seed:               *seed,
		WarmupCount:        *warmup,
		MeasureCount:       *measure,
		CollectChannelUtil: *topN > 0,
		BufferDepth:        *depth,
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if strings.HasSuffix(*traceOut, ".jsonl") {
			cfg.Trace = &trace.JSONLWriter{W: f}
		} else {
			cfg.Trace = &trace.CSVWriter{W: f}
		}
	}
	switch *pattern {
	case "uniform":
	case "hotspot":
		cfg.Pattern = traffic.Hotspot{N: sys.TotalNodes(), Hot: 0, P: *hotspotP}
	case "local":
		sizes := make([]int, sys.NumClusters())
		for i := range sizes {
			sizes[i] = sys.ClusterNodes(i)
		}
		cfg.Pattern = traffic.ClusterLocal{Part: traffic.NewPartition(sizes), PLocal: *localP}
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}

	start := time.Now()
	m, err := sim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("system %s (N=%d), λ_g=%.4g, M=%d×%dB, pattern=%s\n",
		sys.Name, sys.TotalNodes(), *lambda, *flits, *flitBytes, *pattern)
	if m.Saturated {
		fmt.Printf("SATURATED: offered load exceeds capacity (backlog peaked at %d)\n", m.PeakBacklog)
	}
	fmt.Printf("mean latency : %.3f ± %.3f (95%% CI), sd %.3f\n",
		m.Latency.Mean(), m.Latency.CI95(), m.Latency.StdDev())
	fmt.Printf("intra        : %s\n", m.Intra.String())
	fmt.Printf("inter        : %s\n", m.Inter.String())
	fmt.Printf("generated    : %d messages, sim time %.1f units\n", m.Generated, m.SimTime)
	fmt.Printf("bottlenecks  : gateway util %.3f, max channel util %.3f\n",
		m.MaxGatewayUtil, m.MaxChannelUtil)
	fmt.Printf("cost         : %d events in %v (%.2fM events/s)\n",
		m.Events, elapsed.Round(time.Millisecond), float64(m.Events)/1e6/elapsed.Seconds())

	if *topN > 0 {
		type kv struct {
			name string
			u    float64
		}
		var all []kv
		for n, u := range m.ChannelUtil {
			all = append(all, kv{n, u})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].u > all[j].u })
		fmt.Printf("\ntop %d channels by utilization:\n", *topN)
		for i := 0; i < *topN && i < len(all); i++ {
			fmt.Printf("  %6.3f  %s\n", all[i].u, all[i].name)
		}
	}
}

func systemByName(name string) (*cluster.System, error) {
	switch name {
	case "1120":
		return cluster.System1120(), nil
	case "544":
		return cluster.System544(), nil
	case "small":
		return cluster.SmallTestSystem(), nil
	}
	return nil, fmt.Errorf("unknown system %q (want 1120, 544 or small)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsim:", err)
	os.Exit(1)
}
