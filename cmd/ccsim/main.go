// Command ccsim runs the discrete-event cluster-of-clusters simulator at
// one traffic rate and reports measured latency statistics, phase counts,
// and bottleneck utilizations.
//
// Examples:
//
//	ccsim -system 1120 -lambda 2e-4 -flits 32 -flitbytes 256
//	ccsim -system 544 -lambda 5e-4 -measure 100000 -warmup 10000
//	ccsim -system 544 -lambda 3e-4 -pattern hotspot -hotspot-p 0.1
//	ccsim -system 1120 -lambda 1e-4 -top-channels 10
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/ccnet/ccnet/internal/cluster"
	"github.com/ccnet/ccnet/internal/netchar"
	"github.com/ccnet/ccnet/internal/sim"
	"github.com/ccnet/ccnet/internal/trace"
	"github.com/ccnet/ccnet/internal/traffic"
	"github.com/ccnet/ccnet/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags and simulates; split from main so the table-driven
// CLI tests can exercise exit codes and usage output without exec'ing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system      = fs.String("system", "1120", "system organization: 1120, 544 or small")
		lambda      = fs.Float64("lambda", 1e-4, "λ_g: messages per node per time unit")
		flits       = fs.Int("flits", 32, "message length M in flits")
		flitBytes   = fs.Int("flitbytes", 256, "flit size d_m in bytes")
		warmup      = fs.Uint64("warmup", 10000, "warm-up messages (discarded)")
		measure     = fs.Uint64("measure", 100000, "measured messages")
		seed        = fs.Uint64("seed", 1, "random seed")
		pattern     = fs.String("pattern", "uniform", "traffic pattern: uniform, hotspot, local")
		hotspotP    = fs.Float64("hotspot-p", 0.1, "fraction of traffic to the hot node")
		localP      = fs.Float64("local-p", 0.5, "fraction of traffic kept intra-cluster")
		topN        = fs.Int("top-channels", 0, "print the N most utilized channels")
		traceOut    = fs.String("trace", "", "write per-message trace to this file (.csv or .jsonl)")
		depth       = fs.Int("buffer-depth", 1, "channel input buffer depth in flits (paper: 1)")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("ccsim"))
		return 0
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "ccsim:", err)
		return 1
	}

	sys, err := systemByName(*system)
	if err != nil {
		return fail(err)
	}

	cfg := sim.Config{
		Sys:                sys,
		Msg:                netchar.MessageSpec{Flits: *flits, FlitBytes: *flitBytes},
		Lambda:             *lambda,
		Seed:               *seed,
		WarmupCount:        *warmup,
		MeasureCount:       *measure,
		CollectChannelUtil: *topN > 0,
		BufferDepth:        *depth,
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if strings.HasSuffix(*traceOut, ".jsonl") {
			cfg.Trace = &trace.JSONLWriter{W: f}
		} else {
			cfg.Trace = &trace.CSVWriter{W: f}
		}
	}
	switch *pattern {
	case "uniform":
	case "hotspot":
		cfg.Pattern = traffic.Hotspot{N: sys.TotalNodes(), Hot: 0, P: *hotspotP}
	case "local":
		sizes := make([]int, sys.NumClusters())
		for i := range sizes {
			sizes[i] = sys.ClusterNodes(i)
		}
		cfg.Pattern = traffic.ClusterLocal{Part: traffic.NewPartition(sizes), PLocal: *localP}
	default:
		return fail(fmt.Errorf("unknown pattern %q", *pattern))
	}

	start := time.Now()
	m, err := sim.Run(cfg)
	if err != nil {
		return fail(err)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "system %s (N=%d), λ_g=%.4g, M=%d×%dB, pattern=%s\n",
		sys.Name, sys.TotalNodes(), *lambda, *flits, *flitBytes, *pattern)
	if m.Saturated {
		fmt.Fprintf(stdout, "SATURATED: offered load exceeds capacity (backlog peaked at %d)\n", m.PeakBacklog)
	}
	fmt.Fprintf(stdout, "mean latency : %.3f ± %.3f (95%% CI), sd %.3f\n",
		m.Latency.Mean(), m.Latency.CI95(), m.Latency.StdDev())
	fmt.Fprintf(stdout, "intra        : %s\n", m.Intra.String())
	fmt.Fprintf(stdout, "inter        : %s\n", m.Inter.String())
	fmt.Fprintf(stdout, "generated    : %d messages, sim time %.1f units\n", m.Generated, m.SimTime)
	fmt.Fprintf(stdout, "bottlenecks  : gateway util %.3f, max channel util %.3f\n",
		m.MaxGatewayUtil, m.MaxChannelUtil)
	fmt.Fprintf(stdout, "cost         : %d events in %v (%.2fM events/s)\n",
		m.Events, elapsed.Round(time.Millisecond), float64(m.Events)/1e6/elapsed.Seconds())

	if *topN > 0 {
		type kv struct {
			name string
			u    float64
		}
		var all []kv
		for n, u := range m.ChannelUtil {
			all = append(all, kv{n, u})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].u > all[j].u })
		fmt.Fprintf(stdout, "\ntop %d channels by utilization:\n", *topN)
		for i := 0; i < *topN && i < len(all); i++ {
			fmt.Fprintf(stdout, "  %6.3f  %s\n", all[i].u, all[i].name)
		}
	}
	return 0
}

func systemByName(name string) (*cluster.System, error) {
	switch name {
	case "1120":
		return cluster.System1120(), nil
	case "544":
		return cluster.System544(), nil
	case "small":
		return cluster.SmallTestSystem(), nil
	}
	return nil, fmt.Errorf("unknown system %q (want 1120, 544 or small)", name)
}
