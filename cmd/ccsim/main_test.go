package main

import (
	"strings"
	"testing"
)

// TestRun exercises the CLI contract: -version exits 0, bad flags exit 2
// with usage text, bad values exit 1 with a named error, and a tiny
// simulation succeeds.
func TestRun(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string
		wantStderr string
	}{
		{"version", []string{"-version"}, 0, "ccsim version", ""},
		{"help", []string{"-h"}, 0, "", "Usage of ccsim"},
		{"badFlag", []string{"-no-such-flag"}, 2, "", "flag provided but not defined"},
		{"badFlagUsage", []string{"-no-such-flag"}, 2, "", "Usage of ccsim"},
		{"unknownSystem", []string{"-system", "bogus"}, 1, "", `unknown system "bogus"`},
		{"unknownPattern", []string{"-system", "small", "-pattern", "bogus"}, 1, "", `unknown pattern "bogus"`},
		{"tinySim", []string{"-system", "small", "-lambda", "1e-4", "-warmup", "10", "-measure", "100"}, 0, "mean latency", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.wantStdout)
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}
