package main

import (
	"testing"

	"github.com/ccnet/ccnet/internal/clitest"
)

// TestRun exercises the CLI contract: -version exits 0, bad flags exit 2
// with usage text, bad values exit 1 with a named error, and a tiny
// simulation succeeds.
func TestRun(t *testing.T) {
	clitest.Table(t, run, []clitest.Case{
		{Name: "version", Args: []string{"-version"}, WantCode: 0, WantStdout: "ccsim version"},
		{Name: "help", Args: []string{"-h"}, WantCode: 0, WantStderr: "Usage of ccsim"},
		{Name: "badFlag", Args: []string{"-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "badFlagUsage", Args: []string{"-no-such-flag"}, WantCode: 2, WantStderr: "Usage of ccsim"},
		{Name: "unknownSystem", Args: []string{"-system", "bogus"}, WantCode: 1, WantStderr: `unknown system "bogus"`},
		{Name: "unknownPattern", Args: []string{"-system", "small", "-pattern", "bogus"}, WantCode: 1, WantStderr: `unknown pattern "bogus"`},
		{Name: "tinySim", Args: []string{"-system", "small", "-lambda", "1e-4", "-warmup", "10", "-measure", "100"}, WantCode: 0, WantStdout: "mean latency"},
	})
}
