package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ccnet/ccnet/internal/clitest"
)

func TestCLI(t *testing.T) {
	clitest.Table(t, run, []clitest.Case{
		{Name: "no args", Args: nil, WantCode: 2, WantStderr: "usage"},
		{Name: "unknown verb", Args: []string{"blast"}, WantCode: 2, WantStderr: `unknown verb "blast"`},
		{Name: "version", Args: []string{"-version"}, WantCode: 0, WantStdout: "ccload"},
		{Name: "help", Args: []string{"help"}, WantCode: 0, WantStdout: "ccload sweep"},
		{Name: "run bad flag", Args: []string{"run", "-nope"}, WantCode: 2},
		{Name: "run stray arg", Args: []string{"run", "stray"}, WantCode: 2, WantStderr: "unexpected arguments"},
		{Name: "run bad endpoint", Args: []string{"run", "-endpoints", "bogus", "-dry-run"},
			WantCode: 2, WantStderr: `unknown endpoint "bogus"`},
		{Name: "run bad n", Args: []string{"run", "-n", "0", "-dry-run"},
			WantCode: 2, WantStderr: "n must be positive"},
		{Name: "run bad dup", Args: []string{"run", "-dup", "2", "-dry-run"},
			WantCode: 2, WantStderr: "outside [0,1]"},
		{Name: "sweep bad rps", Args: []string{"sweep", "-rps", "abc"}, WantCode: 2, WantStderr: "-rps"},
		{Name: "sweep baseline conflict",
			Args:     []string{"sweep", "-baseline", "a.json", "-write-baseline", "b.json"},
			WantCode: 2, WantStderr: "mutually exclusive"},
		{Name: "run url routed conflict",
			Args:     []string{"run", "-url", "http://x", "-routed", "3"},
			WantCode: 2, WantStderr: "mutually exclusive"},
		{Name: "sweep url routed conflict",
			Args:     []string{"sweep", "-url", "http://x", "-routed", "3"},
			WantCode: 2, WantStderr: "mutually exclusive"},
	})
}

// TestRunRouted drives a tiny load run through a live 2-replica routed
// cluster: the artifact's meta must name the routed target and every
// request must succeed.
func TestRunRouted(t *testing.T) {
	out := filepath.Join(t.TempDir(), "routed.ndjson")
	got := clitest.Run(run, "run", "-routed", "2", "-n", "20", "-rps", "2000", "-seed", "5", "-dup", "0.5", "-out", out)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.Contains(lines[0], `"target":"routed:2"`) {
		t.Errorf("meta line: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"errors":0`) {
		t.Errorf("summary line: %s", lines[len(lines)-1])
	}
}

// TestDryRunDeterministic is the CLI half of the reproducibility
// acceptance criterion: two invocations with the same seed print the
// generated sequence byte-identically, and a different seed does not.
func TestDryRunDeterministic(t *testing.T) {
	args := []string{"run", "-dry-run", "-n", "50", "-seed", "7", "-dup", "0.4", "-endpoints", "evaluate:3,sweep:1"}
	a := clitest.Run(run, args...)
	b := clitest.Run(run, args...)
	if a.Code != 0 || b.Code != 0 {
		t.Fatalf("exit codes %d/%d: %s%s", a.Code, b.Code, a.Stderr, b.Stderr)
	}
	if a.Stdout != b.Stdout {
		t.Fatal("same-seed dry runs differ")
	}
	if !strings.Contains(a.Stdout, `"type":"sha"`) {
		t.Error("dry run prints no sequence SHA")
	}
	c := clitest.Run(run, "run", "-dry-run", "-n", "50", "-seed", "8", "-dup", "0.4", "-endpoints", "evaluate:3,sweep:1")
	if c.Stdout == a.Stdout {
		t.Fatal("different seeds printed identical sequences")
	}
}

// TestRunInProcess exercises a real (tiny) load run end to end: the
// artifact must carry meta, one line per request, and a summary with
// percentiles and achieved RPS.
func TestRunInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.ndjson")
	got := clitest.Run(run, "run", "-n", "30", "-rps", "2000", "-seed", "11", "-dup", "0.5", "-out", out)
	if got.Code != 0 {
		t.Fatalf("exit %d: %s", got.Code, got.Stderr)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 1+30+1 {
		t.Fatalf("artifact has %d lines, want 32", len(lines))
	}
	first, last := lines[0], lines[len(lines)-1]
	if !strings.Contains(first, `"type":"meta"`) || !strings.Contains(first, `"target":"in-process"`) {
		t.Errorf("meta line: %s", first)
	}
	for _, want := range []string{`"type":"summary"`, `"achievedRPS"`, `"p50Seconds"`, `"p99Seconds"`, `"p999Seconds"`, `"specSequenceSHA256"`} {
		if !strings.Contains(last, want) {
			t.Errorf("summary line missing %s: %s", want, last)
		}
	}
	if !strings.Contains(got.Stderr, "rps achieved") {
		t.Errorf("no human summary on stderr: %s", got.Stderr)
	}
}

// TestSweepBaselineRoundTrip writes a baseline from one sweep and
// gates a second identical sweep against it — the CI workflow in
// miniature.
func TestSweepBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two sweeps; skipped in -short")
	}
	base := filepath.Join(t.TempDir(), "base.json")
	args := []string{"sweep", "-endpoints", "evaluate", "-rps", "2000", "-dup", "0.3", "-n", "40", "-seed", "3", "-out", os.DevNull}
	if got := clitest.Run(run, append(args, "-write-baseline", base)...); got.Code != 0 {
		t.Fatalf("write-baseline exit %d: %s", got.Code, got.Stderr)
	}
	got := clitest.Run(run, append(args, "-baseline", base, "-min-rps-pct", "1", "-max-p99-pct", "10000")...)
	if got.Code != 0 {
		t.Fatalf("baseline gate exit %d: %s", got.Code, got.Stderr)
	}
	if !strings.Contains(got.Stderr, "within baseline thresholds") {
		t.Errorf("stderr: %s", got.Stderr)
	}

	// A baseline from a different matrix must flag missing cells.
	got = clitest.Run(run, "sweep", "-endpoints", "healthz", "-rps", "2000", "-dup", "0.3", "-n", "40",
		"-out", os.DevNull, "-baseline", base)
	if got.Code != 1 || !strings.Contains(got.Stderr, "not in baseline") {
		t.Fatalf("mismatched baseline: exit %d, stderr %s", got.Code, got.Stderr)
	}
}
