// Command ccload is the sustained-load harness for ccserved: it
// generates a deterministic request sequence (same -seed → byte-
// identical specs), drives it open-loop (Poisson arrivals at -rps) or
// closed-loop (-closed with -workers and -think) against an in-process
// server or a remote -url, and writes an NDJSON artifact with achieved
// RPS, error rate and p50/p90/p99/p999 latency.
//
// Verbs:
//
//	ccload run [flags]     one load run, NDJSON artifact to stdout/-out
//	ccload sweep [flags]   a load matrix (endpoints × rps × dup), with
//	                       optional baseline comparison for CI
//
// Examples:
//
//	ccload run -endpoints evaluate -n 500 -rps 200 -dup 0.3 -seed 7
//	ccload run -endpoints evaluate:4,sweep:1 -n 200 -closed -workers 16
//	ccload run -n 100 -dry-run -seed 7        # print the sequence only
//	ccload run -url http://localhost:8080 -n 1000 -rps 500
//	ccload sweep -n 200 -rps 100,300 -dup 0.3 -endpoints evaluate,sweep \
//	    -baseline LOADBASE.json -min-rps-pct 60 -max-p99-pct 150
//	ccload sweep -n 200 -rps 100,300 -dup 0.3 -endpoints evaluate,sweep \
//	    -write-baseline LOADBASE.json
//
// Without -url both verbs spin up the full ccserved handler in-process
// (no sockets), which is how CI load-tests hermetically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/ccnet/ccnet/internal/load"
	"github.com/ccnet/ccnet/internal/reqtrace"
	"github.com/ccnet/ccnet/internal/routertest"
	"github.com/ccnet/ccnet/internal/service"
	"github.com/ccnet/ccnet/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches verbs; split from main so the table-driven CLI tests
// can exercise exit codes and usage output without exec'ing.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:], stdout, stderr)
	case "sweep":
		return sweepCmd(args[1:], stdout, stderr)
	case "-version", "--version":
		fmt.Fprintln(stdout, version.String("ccload"))
		return 0
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "ccload: unknown verb %q (valid: run, sweep)\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  ccload run [flags]     one load run, NDJSON artifact to stdout/-out
  ccload sweep [flags]   a load matrix with optional baseline gate
  ccload -version        print version and exit

run flags:
  -endpoints MIX  endpoint mix: "evaluate" or "evaluate:4,sweep:1"
                  (valid: evaluate, sweep, healthz, stats; default evaluate)
  -n N            total requests (default 200)
  -seed S         spec-sequence seed; same seed → byte-identical specs
  -dup P          probability a request reuses an earlier spec (default 0.3)
  -pool K         distinct specs per endpoint pool (default 64)
  -rps R          open loop: target requests/second (default 200)
  -closed         closed loop instead: -workers each issue back to back
  -workers W      closed loop: concurrent workers (default 8)
  -think D        closed loop: mean think time, e.g. 10ms (default 0)
  -url URL        drive a remote server instead of in-process
  -routed K       drive an in-process K-replica cluster behind ccrouter
                  instead of a single in-process server
  -server-workers N  in-process server worker pool (default GOMAXPROCS)
  -out FILE       write the NDJSON artifact to FILE instead of stdout
  -dry-run        print the generated sequence and its SHA, send nothing

sweep flags:
  -endpoints LIST  comma-separated endpoints, one axis value each
                   (default evaluate,sweep)
  -rps LIST        comma-separated open-loop rates (default 100,300)
  -dup LIST        comma-separated duplication rates (default 0.3)
  -n N             requests per cell (default 200)
  -seed S          base seed; cells derive their own
  -pool K          distinct specs per endpoint pool (default 64)
  -url URL         drive a remote server (default: fresh in-process
                   server per cell)
  -routed K        drive a shared in-process K-replica routed cluster
  -server-workers N  in-process server worker pool (default GOMAXPROCS)
  -out FILE        write the sweep report JSON to FILE
  -baseline FILE   compare against FILE; violations exit 1
  -min-rps-pct P   achieved rps must be ≥ P%% of baseline (default 60)
  -max-p99-pct P   p99 may exceed baseline by at most P%% (default 150)
  -write-baseline FILE  write FILE from this sweep instead of comparing
`)
}

// newFlagSet builds a flag set that reports usage errors on stderr and
// exits 2 like the other cc* tools.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func runCmd(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("ccload run", stderr)
	endpoints := fs.String("endpoints", "evaluate", "endpoint mix")
	n := fs.Int("n", 200, "total requests")
	seed := fs.Uint64("seed", 1, "spec-sequence seed")
	dup := fs.Float64("dup", 0.3, "duplication rate")
	pool := fs.Int("pool", 64, "distinct specs per endpoint")
	rps := fs.Float64("rps", 200, "open-loop target rate")
	closed := fs.Bool("closed", false, "closed-loop mode")
	workers := fs.Int("workers", 8, "closed-loop workers")
	think := fs.Duration("think", 0, "closed-loop mean think time")
	url := fs.String("url", "", "remote server URL")
	routed := fs.Int("routed", 0, "replicas behind an in-process router")
	serverWorkers := fs.Int("server-workers", 0, "in-process server workers")
	out := fs.String("out", "", "artifact file")
	dryRun := fs.Bool("dry-run", false, "print the sequence, send nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ccload run: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *url != "" && *routed > 0 {
		fmt.Fprintln(stderr, "ccload run: -url and -routed are mutually exclusive")
		return 2
	}

	mix, err := load.ParseMix(*endpoints)
	if err != nil {
		fmt.Fprintf(stderr, "ccload run: %v\n", err)
		return 2
	}
	gen := load.GenConfig{Mix: mix, N: *n, Seed: *seed, DupRate: *dup, Pool: *pool}
	plan, err := load.Generate(gen)
	if err != nil {
		fmt.Fprintf(stderr, "ccload run: %v\n", err)
		return 2
	}

	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "ccload run: %v\n", err)
			return 1
		}
		defer f.Close()
		dst = f
	}

	if *dryRun {
		if err := load.WritePlan(dst, plan); err != nil {
			fmt.Fprintf(stderr, "ccload run: %v\n", err)
			return 1
		}
		return 0
	}

	target, targetName, cleanup, err := makeTarget(*url, *serverWorkers, *routed)
	if err != nil {
		fmt.Fprintf(stderr, "ccload run: %v\n", err)
		return 1
	}
	if cleanup != nil {
		defer cleanup()
	}
	opts := load.Options{
		Target: target, Plan: plan, Seed: *seed,
		Closed: *closed, RPS: *rps, Workers: *workers, ThinkMean: *think,
	}
	results, sum, err := load.Run(context.Background(), opts)
	if err != nil {
		fmt.Fprintf(stderr, "ccload run: %v\n", err)
		return 1
	}
	meta := load.Meta{
		Version: version.Version, Target: targetName, Gen: gen,
		Mode: sum.Mode, RPS: *rps, SpecSHA: plan.SHA,
	}
	if *closed {
		meta.RPS = 0
		meta.Workers = *workers
		meta.ThinkSecs = think.Seconds()
	}
	if err := load.WriteArtifact(dst, meta, results, sum); err != nil {
		fmt.Fprintf(stderr, "ccload run: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ccload: %d requests, %.1f rps achieved, p50 %.3fms p99 %.3fms, %d errors\n",
		sum.Requests, sum.AchievedRPS, sum.P50Seconds*1e3, sum.P99Seconds*1e3, sum.Errors)
	if len(sum.Stages) > 0 {
		names := make([]string, 0, len(sum.Stages))
		for name := range sum.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			st := sum.Stages[name]
			parts[i] = fmt.Sprintf("%s mean %.3fms p99 %.3fms (n=%d)", name, st.MeanMs, st.P99Ms, st.Count)
		}
		fmt.Fprintf(stderr, "ccload: stages: %s\n", strings.Join(parts, "; "))
	}
	return 0
}

func sweepCmd(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("ccload sweep", stderr)
	endpoints := fs.String("endpoints", "evaluate,sweep", "endpoint axis")
	rpsList := fs.String("rps", "100,300", "rps axis")
	dupList := fs.String("dup", "0.3", "duplication-rate axis")
	n := fs.Int("n", 200, "requests per cell")
	seed := fs.Uint64("seed", 1, "base seed")
	pool := fs.Int("pool", 64, "distinct specs per endpoint")
	url := fs.String("url", "", "remote server URL")
	routed := fs.Int("routed", 0, "replicas behind an in-process router")
	serverWorkers := fs.Int("server-workers", 0, "in-process server workers")
	out := fs.String("out", "", "report file")
	baseline := fs.String("baseline", "", "baseline file to compare against")
	minRPSPct := fs.Float64("min-rps-pct", 60, "achieved-rps floor, % of baseline")
	maxP99Pct := fs.Float64("max-p99-pct", 150, "p99 ceiling, % above baseline")
	writeBaseline := fs.String("write-baseline", "", "write a new baseline instead of comparing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ccload sweep: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *baseline != "" && *writeBaseline != "" {
		fmt.Fprintln(stderr, "ccload sweep: -baseline and -write-baseline are mutually exclusive")
		return 2
	}
	if *url != "" && *routed > 0 {
		fmt.Fprintln(stderr, "ccload sweep: -url and -routed are mutually exclusive")
		return 2
	}

	rpsAxis, err := parseFloats(*rpsList)
	if err != nil {
		fmt.Fprintf(stderr, "ccload sweep: -rps: %v\n", err)
		return 2
	}
	dupAxis, err := parseFloats(*dupList)
	if err != nil {
		fmt.Fprintf(stderr, "ccload sweep: -dup: %v\n", err)
		return 2
	}
	var eps []string
	for _, e := range strings.Split(*endpoints, ",") {
		if e = strings.TrimSpace(e); e != "" {
			eps = append(eps, e)
		}
	}
	cfg := load.SweepConfig{Endpoints: eps, RPS: rpsAxis, DupRates: dupAxis, N: *n, Seed: *seed, Pool: *pool}

	// A remote or routed target is shared across cells (one server, one
	// cluster); the in-process default gets a fresh server per cell so
	// cache state cannot leak between cells.
	newTarget := func() load.Target {
		t, _, _, _ := makeTarget("", *serverWorkers, 0)
		return t
	}
	switch {
	case *url != "":
		shared := load.NewHTTPTarget(*url)
		newTarget = func() load.Target { return shared }
	case *routed > 0:
		shared, _, cleanup, err := makeTarget("", *serverWorkers, *routed)
		if err != nil {
			fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
			return 1
		}
		defer cleanup()
		newTarget = func() load.Target { return shared }
	}

	start := time.Now()
	rep, err := load.RunSweep(context.Background(), cfg, newTarget, func(c load.Cell) {
		fmt.Fprintf(stderr, "ccload: %-28s achieved %.1f rps, p99 %.3fms, %d errors\n",
			c.Key(), c.Summary.AchievedRPS, c.Summary.P99Seconds*1e3, c.Summary.Errors)
	})
	if err != nil {
		fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ccload: sweep of %d cells in %.1fs\n", len(rep.Cells), time.Since(start).Seconds())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
			return 1
		}
		if err := writeReport(f, rep); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
			return 1
		}
	} else if err := writeReport(stdout, rep); err != nil {
		fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
		return 1
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := load.WriteBaseline(f, load.BaselineFromReport(rep)); err != nil {
			fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "ccload: baseline written to %s\n", *writeBaseline)
		return 0
	}
	if *baseline != "" {
		base, err := load.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "ccload sweep: %v\n", err)
			return 1
		}
		if violations := load.Compare(rep, base, *minRPSPct, *maxP99Pct); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(stderr, "ccload: REGRESSION %s\n", v)
			}
			return 1
		}
		fmt.Fprintf(stderr, "ccload: all %d cells within baseline thresholds\n", len(rep.Cells))
	}
	return 0
}

// makeTarget returns the load target: a remote client for url, a live
// routed cluster for routed > 0 (cleanup tears it down), else the full
// ccserved handler in-process. In-process targets run with tracing on
// (sample everything) so every response carries the Server-Timing
// stage breakdown the artifact and summary report; a remote server
// decides its own tracing via its -trace-* flags.
func makeTarget(url string, serverWorkers, routed int) (load.Target, string, func(), error) {
	if url != "" {
		return load.NewHTTPTarget(url), url, nil, nil
	}
	if routed > 0 {
		c, err := routertest.Start(routertest.Config{
			Replicas:      routed,
			ProbeInterval: 250 * time.Millisecond,
			Workers:       serverWorkers,
			Trace:         true,
		})
		if err != nil {
			return nil, "", nil, err
		}
		return load.NewHTTPTarget(c.BaseURL()), fmt.Sprintf("routed:%d", routed), c.Close, nil
	}
	srv := service.New(service.Options{
		Workers: serverWorkers,
		Tracer:  reqtrace.New(reqtrace.Options{Component: "service"}),
	})
	return load.HandlerTarget{Handler: srv.Handler()}, "in-process", nil, nil
}

func writeReport(w io.Writer, rep *load.Report) error {
	return load.WriteSweepReport(w, rep)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
