package main

import (
	"strings"
	"testing"
)

// TestRun exercises the CLI contract: -version exits 0, bad flags and
// bad experiment names exit 2 with guidance, and the cheap table
// experiments render.
func TestRun(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string
		wantStderr string
	}{
		{"version", []string{"-version"}, 0, "ccexp version", ""},
		{"help", []string{"-h"}, 0, "", "Usage of ccexp"},
		{"badFlag", []string{"-no-such-flag"}, 2, "", "flag provided but not defined"},
		{"badFlagUsage", []string{"-no-such-flag"}, 2, "", "Usage of ccexp"},
		{"missingExp", []string{}, 2, "", "-exp is required"},
		{"unknownExp", []string{"-exp", "fig99"}, 2, "", `unknown experiment "fig99"`},
		{"table1", []string{"-exp", "table1"}, 0, "Table 1", ""},
		{"table2", []string{"-exp", "table2"}, 0, "Table 2", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.wantStdout)
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}
