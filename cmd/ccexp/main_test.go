package main

import (
	"testing"

	"github.com/ccnet/ccnet/internal/clitest"
)

// TestRun exercises the CLI contract: -version exits 0, bad flags and
// bad experiment names exit 2 with guidance, and the cheap table
// experiments render.
func TestRun(t *testing.T) {
	clitest.Table(t, run, []clitest.Case{
		{Name: "version", Args: []string{"-version"}, WantCode: 0, WantStdout: "ccexp version"},
		{Name: "help", Args: []string{"-h"}, WantCode: 0, WantStderr: "Usage of ccexp"},
		{Name: "badFlag", Args: []string{"-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "badFlagUsage", Args: []string{"-no-such-flag"}, WantCode: 2, WantStderr: "Usage of ccexp"},
		{Name: "missingExp", Args: []string{}, WantCode: 2, WantStderr: "-exp is required"},
		{Name: "unknownExp", Args: []string{"-exp", "fig99"}, WantCode: 2, WantStderr: `unknown experiment "fig99"`},
		{Name: "table1", Args: []string{"-exp", "table1"}, WantCode: 0, WantStdout: "Table 1"},
		{Name: "table2", Args: []string{"-exp", "table2"}, WantCode: 0, WantStdout: "Table 2"},
	})
}
