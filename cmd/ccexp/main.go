// Command ccexp regenerates the paper's tables and figures (see DESIGN.md
// §7 for the experiment index) and writes CSV and/or human-readable
// output.
//
// Examples:
//
//	ccexp -exp table1
//	ccexp -exp fig3 -csv fig3.csv
//	ccexp -exp fig7
//	ccexp -exp all -quick -outdir results/
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/ccnet/ccnet/internal/experiments"
	"github.com/ccnet/ccnet/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags and dispatches; split from main so the table-driven
// CLI tests can exercise exit codes and usage output without exec'ing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp         = fs.String("exp", "", "experiment: table1, table2, fig3..fig7, ablation, nonuniform, bufferdepth, all")
		csvPath     = fs.String("csv", "", "write CSV to this file")
		outdir      = fs.String("outdir", "", "with -exp all: write one CSV per experiment here")
		quick       = fs.Bool("quick", false, "reduced message counts (fast, less precise)")
		warmup      = fs.Uint64("warmup", 0, "override warm-up message count")
		measure     = fs.Uint64("measure", 0, "override measured message count")
		seed        = fs.Uint64("seed", 1, "random seed")
		reps        = fs.Int("reps", 0, "simulation replications per point (t-based CI)")
		plot        = fs.Bool("plot", false, "render an ASCII chart of each figure")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("ccexp"))
		return 0
	}

	opt := experiments.RunOptions{Seed: *seed, WarmupCount: *warmup, MeasureCount: *measure, Replications: *reps}
	if *quick && *warmup == 0 && *measure == 0 {
		opt.WarmupCount, opt.MeasureCount = 2000, 15000
	}

	switch *exp {
	case "table1":
		fmt.Fprint(stdout, experiments.Table1())
		return 0
	case "table2":
		fmt.Fprint(stdout, experiments.Table2(256))
		return 0
	case "all":
		fmt.Fprint(stdout, experiments.Table1())
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, experiments.Table2(256))
		fmt.Fprintln(stdout)
		for _, id := range sortedIDs() {
			if code := runOne(id, opt, csvForID(*outdir, id), *plot, stdout, stderr); code != 0 {
				return code
			}
		}
		return 0
	case "":
		fmt.Fprintf(stderr, "ccexp: -exp is required (table1, table2, all, %s)\n",
			strings.Join(sortedIDs(), ", "))
		fs.Usage()
		return 2
	default:
		if experiments.All()[*exp] == nil {
			fmt.Fprintf(stderr, "ccexp: unknown experiment %q\n", *exp)
			fmt.Fprintf(stderr, "valid experiments: table1, table2, all, %s\n", strings.Join(sortedIDs(), ", "))
			fmt.Fprintln(stderr, "for configurations beyond the paper's figures, describe them as scenario files and run `ccscen run <file.json>` (see examples/scenarios/)")
			return 2
		}
		return runOne(*exp, opt, *csvPath, *plot, stdout, stderr)
	}
}

// sortedIDs returns the experiment ids in stable order.
func sortedIDs() []string {
	ids := make([]string, 0, len(experiments.All()))
	for id := range experiments.All() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func csvForID(outdir, id string) string {
	if outdir == "" {
		return ""
	}
	return filepath.Join(outdir, id+".csv")
}

func runOne(id string, opt experiments.RunOptions, csvPath string, plot bool, stdout, stderr io.Writer) int {
	start := time.Now()
	res, err := experiments.All()[id](opt)
	if err != nil {
		fmt.Fprintf(stderr, "ccexp: %s: %v\n", id, err)
		return 1
	}
	if err := experiments.Render(stdout, res); err != nil {
		fmt.Fprintln(stderr, "ccexp:", err)
		return 1
	}
	if plot {
		if err := experiments.RenderChart(stdout, res, 72, 22); err != nil {
			fmt.Fprintln(stderr, "ccexp:", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	if csvPath != "" {
		if err := writeCSV(csvPath, res); err != nil {
			fmt.Fprintln(stderr, "ccexp:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", csvPath)
	}
	return 0
}

func writeCSV(path string, res *experiments.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, res); err != nil {
		return err
	}
	return f.Close()
}
