// Command ccexp regenerates the paper's tables and figures (see DESIGN.md
// §7 for the experiment index) and writes CSV and/or human-readable
// output.
//
// Examples:
//
//	ccexp -exp table1
//	ccexp -exp fig3 -csv fig3.csv
//	ccexp -exp fig7
//	ccexp -exp all -quick -outdir results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/ccnet/ccnet/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment: table1, table2, fig3..fig7, ablation, nonuniform, bufferdepth, all")
		csvPath = flag.String("csv", "", "write CSV to this file")
		outdir  = flag.String("outdir", "", "with -exp all: write one CSV per experiment here")
		quick   = flag.Bool("quick", false, "reduced message counts (fast, less precise)")
		warmup  = flag.Uint64("warmup", 0, "override warm-up message count")
		measure = flag.Uint64("measure", 0, "override measured message count")
		seed    = flag.Uint64("seed", 1, "random seed")
		reps    = flag.Int("reps", 0, "simulation replications per point (t-based CI)")
		plot    = flag.Bool("plot", false, "render an ASCII chart of each figure")
	)
	flag.Parse()
	plotFigures = *plot

	opt := experiments.RunOptions{Seed: *seed, WarmupCount: *warmup, MeasureCount: *measure, Replications: *reps}
	if *quick && *warmup == 0 && *measure == 0 {
		opt.WarmupCount, opt.MeasureCount = 2000, 15000
	}

	switch *exp {
	case "table1":
		fmt.Print(experiments.Table1())
		return
	case "table2":
		fmt.Print(experiments.Table2(256))
		return
	case "all":
		ids := sortedIDs()
		fmt.Print(experiments.Table1())
		fmt.Println()
		fmt.Print(experiments.Table2(256))
		fmt.Println()
		for _, id := range ids {
			runOne(id, opt, csvForID(*outdir, id))
		}
		return
	case "":
		fmt.Fprintf(os.Stderr, "ccexp: -exp is required (table1, table2, all, %s)\n",
			strings.Join(sortedIDs(), ", "))
		os.Exit(2)
	default:
		runner := experiments.All()[*exp]
		if runner == nil {
			fmt.Fprintf(os.Stderr, "ccexp: unknown experiment %q\n", *exp)
			fmt.Fprintf(os.Stderr, "valid experiments: table1, table2, all, %s\n", strings.Join(sortedIDs(), ", "))
			fmt.Fprintln(os.Stderr, "for configurations beyond the paper's figures, describe them as scenario files and run `ccscen run <file.json>` (see examples/scenarios/)")
			os.Exit(2)
		}
		runOne(*exp, opt, *csvPath)
	}
}

// sortedIDs returns the experiment ids in stable order.
func sortedIDs() []string {
	ids := make([]string, 0, len(experiments.All()))
	for id := range experiments.All() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func csvForID(outdir, id string) string {
	if outdir == "" {
		return ""
	}
	return filepath.Join(outdir, id+".csv")
}

var plotFigures bool

func runOne(id string, opt experiments.RunOptions, csvPath string) {
	start := time.Now()
	res, err := experiments.All()[id](opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccexp: %s: %v\n", id, err)
		os.Exit(1)
	}
	if err := experiments.Render(os.Stdout, res); err != nil {
		fmt.Fprintln(os.Stderr, "ccexp:", err)
		os.Exit(1)
	}
	if plotFigures {
		if err := experiments.RenderChart(os.Stdout, res, 72, 22); err != nil {
			fmt.Fprintln(os.Stderr, "ccexp:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccexp:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, res); err != nil {
			fmt.Fprintln(os.Stderr, "ccexp:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
}
