package main

import (
	"testing"

	"github.com/ccnet/ccnet/internal/clitest"
)

// TestRun exercises the flag surface without binding a port: -version
// exits 0, bad flags and stray arguments exit 2 with usage text.
func TestRun(t *testing.T) {
	clitest.Table(t, run, []clitest.Case{
		{Name: "version", Args: []string{"-version"}, WantCode: 0, WantStdout: "ccserved version"},
		{Name: "help", Args: []string{"-h"}, WantCode: 0, WantStderr: "Usage of ccserved"},
		{Name: "badFlag", Args: []string{"-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "badFlagUsage", Args: []string{"-no-such-flag"}, WantCode: 2, WantStderr: "Usage of ccserved"},
		{Name: "badTTL", Args: []string{"-ttl", "bogus"}, WantCode: 2, WantStderr: "invalid value"},
		{Name: "strayArg", Args: []string{"-version", "extra"}, WantCode: 0, WantStdout: "ccserved version"},
		{Name: "strayArgNoVersion", Args: []string{"serve"}, WantCode: 2, WantStderr: `unexpected argument "serve"`},
	})
}
