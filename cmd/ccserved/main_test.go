package main

import (
	"strings"
	"testing"
)

// TestRun exercises the flag surface without binding a port: -version
// exits 0, bad flags and stray arguments exit 2 with usage text.
func TestRun(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string
		wantStderr string
	}{
		{"version", []string{"-version"}, 0, "ccserved version", ""},
		{"help", []string{"-h"}, 0, "", "Usage of ccserved"},
		{"badFlag", []string{"-no-such-flag"}, 2, "", "flag provided but not defined"},
		{"badFlagUsage", []string{"-no-such-flag"}, 2, "", "Usage of ccserved"},
		{"badTTL", []string{"-ttl", "bogus"}, 2, "", "invalid value"},
		{"strayArg", []string{"-version", "extra"}, 0, "ccserved version", ""},
		{"strayArgNoVersion", []string{"serve"}, 2, "", `unexpected argument "serve"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.wantStdout)
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}
