// Command ccserved serves the analytical model and the scenario engine
// over HTTP, fronted by a canonical-spec result cache: requests are
// canonicalized and hashed, identical in-flight requests compute once,
// and finished results are reused until evicted (LRU over entries and
// bytes) or expired (TTL).
//
// Endpoints:
//
//	POST /v1/evaluate   one analytical evaluation at a single rate
//	POST /v1/sweep      an analytical sweep over a lambda grid
//	POST /v1/campaign   a full scenario spec (same JSON as ccscen files)
//	POST /v1/batch      a batch of evaluate/sweep/campaign items, streamed
//	                    back incrementally as NDJSON (one result line per
//	                    completed item, in item order, plus a summary line);
//	                    a client that disconnects stops the batch — items
//	                    not yet started never run (in-flight items finish)
//	POST /v1/optimize   a design-space search spec, streamed back as NDJSON
//	                    progress lines plus a terminal Pareto-frontier line;
//	                    repeated specs answer from the result cache, and a
//	                    disconnecting client cancels the search
//	GET  /v1/healthz    liveness + version + shard identity
//	GET  /v1/version    build, API and cache-schema versions
//	GET  /v1/stats      request and cache counters
//
// Every non-2xx response body is the typed APIError envelope (code,
// message, requestId, details); streaming endpoints frame every NDJSON
// line with a "kind" of progress, result or error. Behind a ccrouter
// tier, -shard-id names the replica and -trust-router-keys lets it skip
// re-canonicalizing bodies the router already hashed.
//
// Examples:
//
//	ccserved -addr :8080
//	ccserved -addr :8080 -cache-entries 4096 -cache-bytes 268435456 -ttl 1h
//	curl -s localhost:8080/v1/healthz
//	curl -sN localhost:8080/v1/batch -d @batchfile.json
//	curl -sN localhost:8080/v1/optimize -d @searchspec.json
//
// The request formats are documented in README.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ccnet/ccnet/internal/obs"
	"github.com/ccnet/ccnet/internal/service"
	"github.com/ccnet/ccnet/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags and serves; split from main (and from the listen
// loop) so the table-driven CLI tests can exercise flag handling.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		cacheEntries = fs.Int("cache-entries", 1024, "result cache capacity in entries")
		cacheBytes   = fs.Int64("cache-bytes", 64<<20, "result cache capacity in bytes")
		ttl          = fs.Duration("ttl", 15*time.Minute, "result cache entry lifetime (negative disables expiry)")
		workers      = fs.Int("workers", 0, "sweep/campaign worker goroutines (default GOMAXPROCS)")
		shardID      = fs.String("shard-id", "", "shard identity reported in X-Shard and /v1/version (set when running behind ccrouter)")
		trustRouter  = fs.Bool("trust-router-keys", false, "accept pre-computed cache keys from the X-Ccnet-Key header (only behind a trusted ccrouter tier)")
		showVersion  = fs.Bool("version", false, "print version and exit")
	)
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("ccserved"))
		return 0
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ccserved: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	stack, err := obsFlags.Build("service", stderr)
	if err != nil {
		fmt.Fprintln(stderr, "ccserved:", err)
		return 2
	}
	defer stack.Close()
	if err := stack.ServePprof(*obsFlags.PprofAddr); err != nil {
		fmt.Fprintln(stderr, "ccserved:", err)
		return 2
	}

	srv := service.New(service.Options{
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		CacheTTL:        *ttl,
		Workers:         *workers,
		ShardID:         *shardID,
		TrustRouterKeys: *trustRouter,
		Log:             stack.Log,
		Tracer:          stack.Tracer,
	})
	return serve(*addr, srv.Handler(), stdout, stderr)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains in-flight
// requests for up to 10 seconds.
func serve(addr string, h http.Handler, stdout, stderr io.Writer) int {
	hs := &http.Server{Addr: addr, Handler: h, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(stdout, "ccserved %s listening on %s\n", version.Version, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "ccserved:", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "ccserved: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "ccserved:", err)
			return 1
		}
	}
	return 0
}
