package main

import (
	"testing"

	"github.com/ccnet/ccnet/internal/clitest"
)

func TestCLI(t *testing.T) {
	clitest.Table(t, run, []clitest.Case{
		{Name: "version", Args: []string{"-version"}, WantCode: 0, WantStdout: "ccrouter"},
		{Name: "no replicas", Args: nil, WantCode: 2, WantStderr: "at least one -replica"},
		{Name: "bad replica format", Args: []string{"-replica", "nourl"},
			WantCode: 2, WantStderr: "want id=url"},
		{Name: "empty replica id", Args: []string{"-replica", "=http://x"},
			WantCode: 2, WantStderr: "want id=url"},
		{Name: "stray arg", Args: []string{"-replica", "a=http://x", "stray"},
			WantCode: 2, WantStderr: "unexpected argument"},
		{Name: "duplicate replica id",
			Args:     []string{"-replica", "a=http://x", "-replica", "a=http://y"},
			WantCode: 2, WantStderr: "duplicate replica id"},
		{Name: "bad flag", Args: []string{"-nope"}, WantCode: 2},
	})
}

func TestReplicaFlagString(t *testing.T) {
	var f replicaFlags
	if err := f.Set("a=http://x/"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("b=http://y"); err != nil {
		t.Fatal(err)
	}
	if got, want := f.String(), "a=http://x,b=http://y"; got != want {
		t.Errorf("String() = %q, want %q (trailing slash must be trimmed)", got, want)
	}
}
