// Command ccrouter fronts a fleet of ccserved replicas with a
// consistent-hash sharding proxy: each request body is canonicalized
// once, hashed to a shard, and forwarded — pre-computed cache key
// attached — to the replica that owns it, so identical specs always hit
// the same replica's cache. Replica health is probed actively and
// observed passively; assignments rebalance automatically when a
// replica dies and return when it recovers.
//
// The replica set is given as repeated -replica id=url flags:
//
//	ccrouter -addr :9090 \
//	  -replica a=http://127.0.0.1:8081 \
//	  -replica b=http://127.0.0.1:8082 \
//	  -replica c=http://127.0.0.1:8083
//
// Each replica should run with the matching -shard-id and (on a trusted
// network) -trust-router-keys so it reuses the router's canonical key
// instead of re-hashing the body.
//
// The router serves the same /v1 surface as ccserved — POST compute
// endpoints are sharded by body key, GET /v1/version and /v1/stats
// round-robin, GET /v1/healthz reports the router's own view of the
// fleet, GET /v1/traces streams the router's recent request traces as
// NDJSON, and GET /metrics exposes ccrouter_* series. Every non-2xx
// body is the same typed APIError envelope the replicas use.
//
// The shared observability flags (-log-level, -trace-*, -pprof-addr)
// control structured JSON logging, end-to-end request tracing — the
// router mints or adopts the W3C traceparent and the replicas join the
// same trace — and the gated profiling listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ccnet/ccnet/internal/obs"
	"github.com/ccnet/ccnet/internal/router"
	"github.com/ccnet/ccnet/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// replicaFlags collects repeated -replica id=url occurrences.
type replicaFlags []router.Replica

func (f *replicaFlags) String() string {
	parts := make([]string, len(*f))
	for i, r := range *f {
		parts[i] = r.ID + "=" + r.URL
	}
	return strings.Join(parts, ",")
}

func (f *replicaFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*f = append(*f, router.Replica{ID: id, URL: strings.TrimRight(url, "/")})
	return nil
}

// run parses flags and serves; split from main so the CLI tests can
// exercise flag handling without binding sockets.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var replicas replicaFlags
	fs.Var(&replicas, "replica", "replica as id=url (repeatable, at least one required)")
	var (
		addr          = fs.String("addr", ":9090", "listen address")
		vnodes        = fs.Int("vnodes", 64, "virtual ring points per replica")
		probeInterval = fs.Duration("probe-interval", time.Second, "active health-probe period")
		failAfter     = fs.Int("fail-after", 2, "consecutive failures before a replica is marked down")
		riseAfter     = fs.Int("rise-after", 2, "consecutive successes before a replica is marked up again")
		maxRetries    = fs.Int("max-retries", 2, "additional replicas to try after a transport failure")
		showVersion   = fs.Bool("version", false, "print version and exit")
	)
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("ccrouter"))
		return 0
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ccrouter: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if len(replicas) == 0 {
		fmt.Fprintln(stderr, "ccrouter: at least one -replica id=url is required")
		fs.Usage()
		return 2
	}

	stack, err := obsFlags.Build("router", stderr)
	if err != nil {
		fmt.Fprintln(stderr, "ccrouter:", err)
		return 2
	}
	defer stack.Close()
	if err := stack.ServePprof(*obsFlags.PprofAddr); err != nil {
		fmt.Fprintln(stderr, "ccrouter:", err)
		return 2
	}

	rt, err := router.New(router.Options{
		Replicas:      replicas,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		FailAfter:     *failAfter,
		RiseAfter:     *riseAfter,
		MaxRetries:    *maxRetries,
		Log:           stack.Log,
		Tracer:        stack.Tracer,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ccrouter:", err)
		return 2
	}
	rt.Start()
	defer rt.Close()
	return serve(*addr, rt.Handler(), len(replicas), stdout, stderr)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains in-flight
// requests for up to 10 seconds.
func serve(addr string, h http.Handler, nReplicas int, stdout, stderr io.Writer) int {
	hs := &http.Server{Addr: addr, Handler: h, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(stdout, "ccrouter %s listening on %s, %d replicas\n", version.Version, addr, nReplicas)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "ccrouter:", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "ccrouter: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "ccrouter:", err)
			return 1
		}
	}
	return 0
}
