package main

import (
	"testing"

	"github.com/ccnet/ccnet/internal/clitest"
)

// TestRun exercises the CLI contract: -version exits 0, bad flags exit 2
// with usage text, bad values exit 1 with a named error, and a small
// real sweep succeeds.
func TestRun(t *testing.T) {
	clitest.Table(t, run, []clitest.Case{
		{Name: "version", Args: []string{"-version"}, WantCode: 0, WantStdout: "ccmodel version"},
		{Name: "help", Args: []string{"-h"}, WantCode: 0, WantStderr: "Usage of ccmodel"},
		{Name: "badFlag", Args: []string{"-no-such-flag"}, WantCode: 2, WantStderr: "flag provided but not defined"},
		{Name: "badFlagUsage", Args: []string{"-no-such-flag"}, WantCode: 2, WantStderr: "Usage of ccmodel"},
		{Name: "unknownSystem", Args: []string{"-system", "bogus"}, WantCode: 1, WantStderr: `unknown system "bogus"`},
		{Name: "unknownVariant", Args: []string{"-system", "small", "-variant", "bogus"}, WantCode: 1, WantStderr: `unknown variant "bogus"`},
		{Name: "smallSweep", Args: []string{"-system", "small", "-from", "1e-5", "-to", "1e-4", "-points", "3"}, WantCode: 0, WantStdout: "saturation point"},
	})
}
