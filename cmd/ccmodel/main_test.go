package main

import (
	"strings"
	"testing"
)

// TestRun exercises the CLI contract: -version exits 0, bad flags exit 2
// with usage text, bad values exit 1 with a named error, and a small
// real sweep succeeds.
func TestRun(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string
		wantStderr string
	}{
		{"version", []string{"-version"}, 0, "ccmodel version", ""},
		{"help", []string{"-h"}, 0, "", "Usage of ccmodel"},
		{"badFlag", []string{"-no-such-flag"}, 2, "", "flag provided but not defined"},
		{"badFlagUsage", []string{"-no-such-flag"}, 2, "", "Usage of ccmodel"},
		{"unknownSystem", []string{"-system", "bogus"}, 1, "", `unknown system "bogus"`},
		{"unknownVariant", []string{"-system", "small", "-variant", "bogus"}, 1, "", `unknown variant "bogus"`},
		{"smallSweep", []string{"-system", "small", "-from", "1e-5", "-to", "1e-4", "-points", "3"}, 0, "saturation point", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.wantStdout)
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}
