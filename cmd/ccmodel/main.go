// Command ccmodel evaluates the analytical latency model on one of the
// paper's system organizations (or a custom uniform one) across a traffic
// sweep, printing latency, per-branch decomposition, and the saturation
// point.
//
// Examples:
//
//	ccmodel -system 1120 -flits 32 -flitbytes 256 -from 2.5e-5 -to 4.75e-4 -points 10
//	ccmodel -system 544 -flits 128 -variant paper-literal -decompose
//	ccmodel -system 1120 -icn2-scale 1.2 -flits 128
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ccnet/ccnet/internal/cluster"
	"github.com/ccnet/ccnet/internal/core"
	"github.com/ccnet/ccnet/internal/netchar"
	"github.com/ccnet/ccnet/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags and evaluates; split from main so the table-driven
// CLI tests can exercise exit codes and usage output without exec'ing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccmodel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system      = fs.String("system", "1120", "system organization: 1120, 544 or small")
		flits       = fs.Int("flits", 32, "message length M in flits")
		flitBytes   = fs.Int("flitbytes", 256, "flit size d_m in bytes")
		from        = fs.Float64("from", 2.5e-5, "sweep start λ_g")
		to          = fs.Float64("to", 4.75e-4, "sweep end λ_g")
		points      = fs.Int("points", 10, "sweep points")
		variant     = fs.String("variant", "reconstructed", "rate variant: reconstructed or paper-literal")
		sandf       = fs.Bool("sf-gateways", false, "add the store-and-forward gateway correction")
		icn2Scale   = fs.Float64("icn2-scale", 1, "scale ICN2 bandwidth by this factor (Fig 7 knob)")
		decompose   = fs.Bool("decompose", false, "print per-cluster latency decomposition of the last point")
		locality    = fs.Float64("locality", -1, "cluster-local traffic fraction in [0,1) (default: uniform destinations)")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("ccmodel"))
		return 0
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "ccmodel:", err)
		return 1
	}

	sys, err := systemByName(*system)
	if err != nil {
		return fail(err)
	}
	if *icn2Scale != 1 {
		sys = sys.ScaleICN2Bandwidth(*icn2Scale)
	}

	opt := core.Options{GatewayStoreAndForward: *sandf}
	if *locality >= 0 {
		opt.UseLocality = true
		opt.LocalityFraction = *locality
	}
	switch *variant {
	case "reconstructed":
	case "paper-literal":
		opt.Variant = core.PaperLiteral
	default:
		return fail(fmt.Errorf("unknown variant %q", *variant))
	}

	model, err := core.New(sys, netchar.MessageSpec{Flits: *flits, FlitBytes: *flitBytes}, opt)
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "system %s: N=%d C=%d m=%d; M=%d flits × %d B; variant=%v sf=%v\n",
		sys.Name, sys.TotalNodes(), sys.NumClusters(), sys.Ports, *flits, *flitBytes, opt.Variant, *sandf)
	fmt.Fprintf(stdout, "saturation point: λ_g ≈ %.4g msg/node/time-unit\n\n", model.SaturationPoint(0.1, 1e-5))

	fmt.Fprintf(stdout, "%-12s %-12s %-12s %-12s %s\n", "lambda", "latency", "intra", "inter", "status")
	var last *core.Result
	for _, r := range model.Sweep(core.LambdaGrid(*from, *to, *points)) {
		status := "ok"
		lat, intra, inter := fmt.Sprintf("%.2f", r.MeanLatency),
			fmt.Sprintf("%.2f", r.MeanIntra), fmt.Sprintf("%.2f", r.MeanInter)
		if r.Saturated {
			status = "saturated"
			lat, intra, inter = "-", "-", "-"
		}
		fmt.Fprintf(stdout, "%-12.4e %-12s %-12s %-12s %s\n", r.Lambda, lat, intra, inter, status)
		last = r
	}

	if *decompose && last != nil && !last.Saturated {
		fmt.Fprintf(stdout, "\nper-cluster decomposition at λ=%.4e:\n", last.Lambda)
		fmt.Fprintf(stdout, "%-4s %-6s %-8s %-8s %-8s %-8s %-8s %-8s\n",
			"i", "U", "W_in", "T_in", "L_in", "T_ex", "W_d", "mean")
		for i, cr := range last.PerCluster {
			fmt.Fprintf(stdout, "%-4d %-6.3f %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f\n",
				i, cr.U, cr.WIn, cr.TIn, cr.LIn, cr.TEx, cr.WD, cr.Mean)
		}
	}
	return 0
}

func systemByName(name string) (*cluster.System, error) {
	switch name {
	case "1120":
		return cluster.System1120(), nil
	case "544":
		return cluster.System544(), nil
	case "small":
		return cluster.SmallTestSystem(), nil
	}
	return nil, fmt.Errorf("unknown system %q (want 1120, 544 or small)", name)
}
