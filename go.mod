module github.com/ccnet/ccnet

go 1.24
